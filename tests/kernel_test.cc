// Differential tests of the batch scoring kernels (math/kernels.h): every
// backend compiled into this binary and runnable on this CPU must be
// BIT-IDENTICAL to the scalar reference backend — which itself must be
// bit-identical to looping the legacy per-entry scalar math — across random
// sweeps and the IEEE edge values (sigma floors, extreme |x - mu| / sigma,
// denormals, +-inf, NaN propagation) and at entry counts that are not a
// multiple of any vector width. Registered under the `concurrency` ctest
// label so the tsan and asan presets inherit the whole sweep.
//
// The suite prints "active backend: <name>" so CI can grep LastTest.log to
// prove which backend a lane dispatched to (see .github/workflows/ci.yml).

#include <cmath>
#include <cstring>
#include <limits>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "gausstree/delta_tree.h"
#include "math/gaussian.h"
#include "math/hull.h"
#include "math/kernels.h"
#include "pfv/pfv.h"

namespace gauss {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
constexpr double kDenormal = 5e-324;

// Values worth planting in any mu/sigma slot: each one either routes a SIMD
// block through its scalar-fallback path or must survive it bit-exactly.
const double kEdgeValues[] = {
    0.0,     -0.0,       1e-300, kDenormal, 1e300,
    1e9,     -1e9,       kInf,   -kInf,     kNan,
    1e-12,   0.5,        2.0,    1.0 + 1e-15,
};

struct JointFixture {
  size_t n = 0, dim = 0, stride = 0;
  std::vector<double> planes;  // dim mu planes then dim sigma planes
  std::vector<double> mu_q, sigma_q;

  kernels::JointBatchArgs Args() const {
    kernels::JointBatchArgs args;
    args.mu = planes.data();
    args.sigma = planes.data() + dim * stride;
    args.stride = stride;
    args.n = n;
    args.dim = dim;
    args.mu_q = mu_q.data();
    args.sigma_q = sigma_q.data();
    return args;
  }

  double& mu(size_t d, size_t j) { return planes[d * stride + j]; }
  double& sigma(size_t d, size_t j) { return planes[(dim + d) * stride + j]; }
};

struct HullFixture {
  size_t n = 0, dim = 0, stride = 0;
  std::vector<double> planes;  // mu_lo | mu_hi | sigma_lo | sigma_hi
  std::vector<double> mu_q, sigma_q;

  kernels::HullBatchArgs Args() const {
    kernels::HullBatchArgs args;
    args.mu_lo = planes.data();
    args.mu_hi = planes.data() + dim * stride;
    args.sigma_lo = planes.data() + 2 * dim * stride;
    args.sigma_hi = planes.data() + 3 * dim * stride;
    args.stride = stride;
    args.n = n;
    args.dim = dim;
    args.mu_q = mu_q.data();
    args.sigma_q = sigma_q.data();
    return args;
  }

  double& mu_lo(size_t d, size_t j) { return planes[d * stride + j]; }
  double& mu_hi(size_t d, size_t j) { return planes[(dim + d) * stride + j]; }
  double& sigma_lo(size_t d, size_t j) {
    return planes[(2 * dim + d) * stride + j];
  }
  double& sigma_hi(size_t d, size_t j) {
    return planes[(3 * dim + d) * stride + j];
  }
};

JointFixture MakeJointFixture(size_t n, size_t dim, uint64_t seed) {
  Rng rng(seed);
  JointFixture f;
  f.n = n;
  f.dim = dim;
  f.stride = kernels::PadEntries(n);
  f.planes.assign(2 * dim * f.stride, 0.0);
  for (size_t d = 0; d < dim; ++d) {
    for (size_t j = 0; j < n; ++j) {
      f.mu(d, j) = rng.Uniform(-5, 5);
      f.sigma(d, j) = rng.Uniform(1e-4, 2.0);
    }
  }
  for (size_t d = 0; d < dim; ++d) {
    f.mu_q.push_back(rng.Uniform(-5, 5));
    f.sigma_q.push_back(rng.Uniform(1e-4, 2.0));
  }
  return f;
}

HullFixture MakeHullFixture(size_t n, size_t dim, uint64_t seed) {
  Rng rng(seed);
  HullFixture f;
  f.n = n;
  f.dim = dim;
  f.stride = kernels::PadEntries(n);
  f.planes.assign(4 * dim * f.stride, 0.0);
  for (size_t d = 0; d < dim; ++d) {
    for (size_t j = 0; j < n; ++j) {
      double lo = rng.Uniform(-5, 5), hi = rng.Uniform(-5, 5);
      if (lo > hi) std::swap(lo, hi);
      f.mu_lo(d, j) = lo;
      f.mu_hi(d, j) = hi;
      double slo = rng.Uniform(1e-4, 1.0), shi = rng.Uniform(1e-4, 1.0);
      if (slo > shi) std::swap(slo, shi);
      f.sigma_lo(d, j) = slo;
      f.sigma_hi(d, j) = shi;
    }
  }
  for (size_t d = 0; d < dim; ++d) {
    f.mu_q.push_back(rng.Uniform(-5, 5));
    f.sigma_q.push_back(rng.Uniform(1e-4, 2.0));
  }
  return f;
}

// Bit-level equality that treats any-NaN == any-NaN per slot only when the
// payloads match exactly — the contract is memcmp-identical output buffers.
::testing::AssertionResult SameBits(const std::vector<double>& ref,
                                    const std::vector<double>& got) {
  EXPECT_EQ(ref.size(), got.size());
  for (size_t i = 0; i < ref.size(); ++i) {
    if (std::memcmp(&ref[i], &got[i], sizeof(double)) != 0) {
      return ::testing::AssertionFailure()
             << "slot " << i << ": scalar=" << ref[i] << " ("
             << std::hexfloat << ref[i] << ") got=" << got[i] << " ("
             << got[i] << ")" << std::defaultfloat;
    }
  }
  return ::testing::AssertionSuccess();
}

std::vector<const kernels::KernelBackend*> RunnableBackends() {
  std::vector<const kernels::KernelBackend*> runnable;
  for (const kernels::KernelBackend* backend : kernels::CompiledBackends()) {
    if (kernels::Runnable(*backend)) runnable.push_back(backend);
  }
  return runnable;
}

void ExpectJointMatchesScalar(JointFixture& f, const char* what) {
  const size_t n = f.n;
  std::vector<double> ref(n, -1.0);
  kernels::ScalarBackend().joint_log_density(f.Args(), ref.data());
  for (const kernels::KernelBackend* backend : RunnableBackends()) {
    std::vector<double> got(n, -2.0);
    backend->joint_log_density(f.Args(), got.data());
    EXPECT_TRUE(SameBits(ref, got))
        << what << ": backend " << backend->name << " dim=" << f.dim
        << " n=" << n;
  }
}

void ExpectHullMatchesScalar(HullFixture& f, const char* what) {
  const size_t n = f.n;
  std::vector<double> ref_up(n, -1.0), ref_lo(n, -1.0);
  kernels::ScalarBackend().hull_bounds(f.Args(), ref_up.data(), ref_lo.data());
  for (const kernels::KernelBackend* backend : RunnableBackends()) {
    std::vector<double> got_up(n, -2.0), got_lo(n, -2.0);
    backend->hull_bounds(f.Args(), got_up.data(), got_lo.data());
    EXPECT_TRUE(SameBits(ref_up, got_up))
        << what << " (upper): backend " << backend->name << " dim=" << f.dim
        << " n=" << n;
    EXPECT_TRUE(SameBits(ref_lo, got_lo))
        << what << " (lower): backend " << backend->name << " dim=" << f.dim
        << " n=" << n;
  }
}

TEST(KernelDispatchTest, ScalarAlwaysCompiledAndRunnable) {
  const auto& backends = kernels::CompiledBackends();
  ASSERT_FALSE(backends.empty());
  EXPECT_STREQ(backends[0]->name, "scalar");
  EXPECT_TRUE(kernels::Runnable(*backends[0]));
  // The grep target for CI's backend-proof step.
  printf("active backend: %s\n", kernels::ActiveBackend().name);
  for (const kernels::KernelBackend* backend : backends) {
    printf("compiled backend: %s (runnable: %s)\n", backend->name,
           kernels::Runnable(*backend) ? "yes" : "no");
  }
}

TEST(KernelDispatchTest, ForceScalarPinsScalar) {
  const char* force = std::getenv("GAUSS_FORCE_SCALAR");
  if (force == nullptr || force[0] == '\0' ||
      (force[0] == '0' && force[1] == '\0')) {
    GTEST_SKIP() << "GAUSS_FORCE_SCALAR not set";
  }
  EXPECT_STREQ(kernels::ActiveBackend().name, "scalar");
}

// The scalar reference backend must equal a literal loop over the legacy
// per-entry functions — that is what "reference" means here.
TEST(KernelScalarReferenceTest, JointEqualsLegacyLoop) {
  JointFixture f = MakeJointFixture(37, 11, 101);
  std::vector<double> out(f.n);
  kernels::ScalarBackend().joint_log_density(f.Args(), out.data());
  for (size_t j = 0; j < f.n; ++j) {
    double acc = 0.0;
    for (size_t d = 0; d < f.dim; ++d) {
      const double combined = CombineSigma(f.sigma(d, j), f.sigma_q[d],
                                           SigmaPolicy::kConvolution);
      acc += GaussianLogPdf(f.mu_q[d], f.mu(d, j), combined);
    }
    EXPECT_EQ(acc, out[j]) << "entry " << j;
  }
}

TEST(KernelScalarReferenceTest, HullEqualsLegacyLoop) {
  HullFixture f = MakeHullFixture(29, 7, 102);
  std::vector<double> up(f.n), lo(f.n);
  kernels::ScalarBackend().hull_bounds(f.Args(), up.data(), lo.data());
  for (size_t j = 0; j < f.n; ++j) {
    double acc_up = 0.0, acc_lo = 0.0;
    for (size_t d = 0; d < f.dim; ++d) {
      DimBounds bounds;
      bounds.mu_lo = f.mu_lo(d, j);
      bounds.mu_hi = f.mu_hi(d, j);
      bounds.sigma_lo = f.sigma_lo(d, j);
      bounds.sigma_hi = f.sigma_hi(d, j);
      const DimBounds adjusted = QueryAdjustedBounds(
          bounds, f.sigma_q[d], SigmaPolicy::kConvolution);
      acc_up += LogUpperHull(f.mu_q[d], adjusted);
      acc_lo += LogLowerHull(f.mu_q[d], adjusted);
    }
    EXPECT_EQ(acc_up, up[j]) << "entry " << j;
    EXPECT_EQ(acc_lo, lo[j]) << "entry " << j;
  }
}

TEST(KernelDifferentialTest, JointRandomSweep) {
  for (const size_t dim : {1u, 2u, 8u, 27u}) {
    // n values straddle every vector width and force ragged tails.
    for (const size_t n : {1u, 2u, 3u, 7u, 8u, 9u, 15u, 16u, 61u, 64u}) {
      for (uint64_t seed = 1; seed <= 5; ++seed) {
        JointFixture f = MakeJointFixture(n, dim, seed);
        ExpectJointMatchesScalar(f, "random sweep");
      }
    }
  }
}

TEST(KernelDifferentialTest, HullRandomSweep) {
  for (const size_t dim : {1u, 2u, 8u, 27u}) {
    for (const size_t n : {1u, 3u, 8u, 9u, 31u, 61u, 64u}) {
      for (uint64_t seed = 1; seed <= 5; ++seed) {
        HullFixture f = MakeHullFixture(n, dim, seed);
        ExpectHullMatchesScalar(f, "random sweep");
      }
    }
  }
}

// Every edge value in every slot of a full-width block: sigma floors,
// denormals, infinities, NaN payload propagation.
TEST(KernelDifferentialTest, JointEdgeValues) {
  for (const double edge : kEdgeValues) {
    for (const bool into_sigma : {false, true}) {
      JointFixture f = MakeJointFixture(17, 3, 7);
      for (size_t j = 0; j < f.n; j += 2) {
        if (into_sigma) {
          f.sigma(j % f.dim, j) = edge;
        } else {
          f.mu(j % f.dim, j) = edge;
        }
      }
      ExpectJointMatchesScalar(f, "edge values");
    }
  }
}

TEST(KernelDifferentialTest, JointEdgeQueries) {
  for (const double edge : kEdgeValues) {
    JointFixture f = MakeJointFixture(16, 4, 9);
    f.mu_q[1] = edge;
    ExpectJointMatchesScalar(f, "edge query mu");
    JointFixture g = MakeJointFixture(16, 4, 10);
    g.sigma_q[2] = edge;
    ExpectJointMatchesScalar(g, "edge query sigma");
  }
}

TEST(KernelDifferentialTest, JointExtremeZScores) {
  // |x - mu| / sigma so large that zz overflows, and so small that the
  // density is dominated by -log sigma.
  JointFixture f = MakeJointFixture(16, 2, 12);
  f.mu(0, 0) = 1e155;
  f.sigma(0, 0) = 1e-155;  // z ~ 1e310: zz = inf
  f.mu(0, 1) = 1e-30;
  f.sigma(0, 1) = 1e280;   // z ~ 0
  f.mu(1, 2) = -1e155;
  f.sigma(1, 2) = kDenormal;
  ExpectJointMatchesScalar(f, "extreme z");
}

// Edge values under the hull domain invariant (DimBounds::Valid(), which
// every finalized node's bounds satisfy): after planting, the bounds are
// re-ordered so mu_lo <= mu_hi and 0 < sigma_lo <= sigma_hi. NaN — which
// Valid() excludes but the kernels still promise to route identically — is
// exercised via the query in HullEdgeQueries below.
TEST(KernelDifferentialTest, HullEdgeValues) {
  const double mu_edges[] = {0.0, -0.0, 1e-300, kDenormal, 1e300,
                             1e9,  -1e9, kInf,   -kInf,     1e-12};
  const double sigma_edges[] = {kDenormal, 1e-300, 1e-12, 0.5, 1e9, 1e300,
                                kInf};
  for (const double edge : mu_edges) {
    for (const bool into_hi : {false, true}) {
      HullFixture f = MakeHullFixture(17, 3, 8);
      for (size_t j = 0; j < f.n; j += 2) {
        const size_t d = j % f.dim;
        double lo = into_hi ? f.mu_lo(d, j) : edge;
        double hi = into_hi ? edge : f.mu_hi(d, j);
        if (hi < lo) std::swap(lo, hi);
        f.mu_lo(d, j) = lo;
        f.mu_hi(d, j) = hi;
      }
      ExpectHullMatchesScalar(f, "mu edge values");
    }
  }
  for (const double edge : sigma_edges) {
    for (const bool into_hi : {false, true}) {
      HullFixture f = MakeHullFixture(17, 3, 9);
      for (size_t j = 0; j < f.n; j += 2) {
        const size_t d = j % f.dim;
        double lo = into_hi ? f.sigma_lo(d, j) : edge;
        double hi = into_hi ? edge : f.sigma_hi(d, j);
        if (hi < lo) std::swap(lo, hi);
        f.sigma_lo(d, j) = lo;
        f.sigma_hi(d, j) = hi;
      }
      ExpectHullMatchesScalar(f, "sigma edge values");
    }
  }
}

TEST(KernelDifferentialTest, HullEdgeQueries) {
  for (const double edge : kEdgeValues) {
    HullFixture f = MakeHullFixture(16, 4, 21);
    f.mu_q[1] = edge;
    ExpectHullMatchesScalar(f, "edge query mu");
    HullFixture g = MakeHullFixture(16, 4, 22);
    g.sigma_q[2] = edge;
    ExpectHullMatchesScalar(g, "edge query sigma");
  }
}

TEST(KernelDifferentialTest, HullQueryAcrossAllSevenCases) {
  // Sweep the query mean across the Lemma 2 piecewise regions of a fixed
  // bound box (hull.h cases I-VII): far left, boundary, inside, far right.
  HullFixture f = MakeHullFixture(16, 1, 20);
  for (size_t j = 0; j < f.n; ++j) {
    f.mu_lo(0, j) = -1.0;
    f.mu_hi(0, j) = 1.0;
    f.sigma_lo(0, j) = 0.1;
    f.sigma_hi(0, j) = 0.5;
  }
  for (const double x : {-50.0, -1.6, -1.5, -1.1, -1.0, -0.999, 0.0, 0.999,
                         1.0, 1.1, 1.5, 1.6, 50.0}) {
    f.mu_q[0] = x;
    ExpectHullMatchesScalar(f, "seven cases");
  }
}

TEST(KernelDifferentialTest, ExpShiftSweep) {
  Rng rng(31);
  for (const size_t n : {1u, 7u, 8u, 15u, 64u, 301u}) {
    std::vector<double> log_in(n);
    for (size_t j = 0; j < n; ++j) log_in[j] = rng.Uniform(-1000, 50);
    // Plant the specials: overflow, underflow, NaN, +-inf, denormal result.
    if (n >= 8) {
      log_in[0] = 800.0;
      log_in[1] = -800.0;
      log_in[2] = kNan;
      log_in[3] = kInf;
      log_in[4] = -kInf;
      log_in[5] = -745.0;
      log_in[6] = 709.7;
      log_in[7] = 0.0;
    }
    for (const double shift : {-3.5, 0.0, 100.0}) {
      std::vector<double> ref(n, -1.0);
      kernels::ScalarBackend().exp_shift(log_in.data(), shift, n, ref.data());
      for (const kernels::KernelBackend* backend : RunnableBackends()) {
        std::vector<double> got(n, -2.0);
        backend->exp_shift(log_in.data(), shift, n, got.data());
        EXPECT_TRUE(SameBits(ref, got))
            << "exp_shift backend " << backend->name << " n=" << n
            << " shift=" << shift;
      }
    }
  }
}

TEST(KernelDifferentialTest, AdditiveSigmaPolicy) {
  JointFixture f = MakeJointFixture(23, 5, 40);
  {
    kernels::JointBatchArgs args = f.Args();
    args.policy = SigmaPolicy::kAdditive;
    std::vector<double> ref(f.n);
    kernels::ScalarBackend().joint_log_density(args, ref.data());
    for (const kernels::KernelBackend* backend : RunnableBackends()) {
      std::vector<double> got(f.n);
      backend->joint_log_density(args, got.data());
      EXPECT_TRUE(SameBits(ref, got)) << "additive joint " << backend->name;
    }
  }
  HullFixture h = MakeHullFixture(23, 5, 41);
  {
    kernels::HullBatchArgs args = h.Args();
    args.policy = SigmaPolicy::kAdditive;
    std::vector<double> ref_up(h.n), ref_lo(h.n), got_up(h.n), got_lo(h.n);
    kernels::ScalarBackend().hull_bounds(args, ref_up.data(), ref_lo.data());
    for (const kernels::KernelBackend* backend : RunnableBackends()) {
      backend->hull_bounds(args, got_up.data(), got_lo.data());
      EXPECT_TRUE(SameBits(ref_up, got_up)) << "additive hull " << backend->name;
      EXPECT_TRUE(SameBits(ref_lo, got_lo)) << "additive hull " << backend->name;
    }
  }
}

// Portable transcendental contracts (the scalar side of the bit-stability
// story): IEEE special cases and near-libm accuracy.
TEST(PortableTranscendentalTest, LogSpecialCases) {
  EXPECT_EQ(kernels::PortableLog(1.0), 0.0);
  EXPECT_EQ(kernels::PortableLog(0.0), -kInf);
  EXPECT_EQ(kernels::PortableLog(-0.0), -kInf);
  EXPECT_EQ(kernels::PortableLog(kInf), kInf);
  EXPECT_TRUE(std::isnan(kernels::PortableLog(-1.0)));
  EXPECT_TRUE(std::isnan(kernels::PortableLog(kNan)));
  EXPECT_TRUE(std::isnan(kernels::PortableLog(-kInf)));
  // Denormal inputs take the rescaled path and stay finite.
  EXPECT_NEAR(kernels::PortableLog(kDenormal), std::log(kDenormal), 1e-12);
}

TEST(PortableTranscendentalTest, ExpSpecialCases) {
  EXPECT_EQ(kernels::PortableExp(0.0), 1.0);
  EXPECT_EQ(kernels::PortableExp(kInf), kInf);
  EXPECT_EQ(kernels::PortableExp(-kInf), 0.0);
  EXPECT_TRUE(std::isnan(kernels::PortableExp(kNan)));
  EXPECT_EQ(kernels::PortableExp(1000.0), kInf);   // overflow
  EXPECT_EQ(kernels::PortableExp(-1000.0), 0.0);   // underflow
  // Gradual underflow region produces denormals, not a hard zero.
  const double tiny = kernels::PortableExp(-744.0);
  EXPECT_GT(tiny, 0.0);
  EXPECT_LT(tiny, std::numeric_limits<double>::min());
}

TEST(PortableTranscendentalTest, NearLibmAccuracy) {
  Rng rng(99);
  for (int i = 0; i < 20000; ++i) {
    const double x = std::exp(rng.Uniform(-300, 300));  // log-uniform
    const double ref = std::log(x);
    const double got = kernels::PortableLog(x);
    EXPECT_NEAR(got, ref, 4e-16 * std::max(1.0, std::abs(ref))) << "x=" << x;
  }
  for (int i = 0; i < 20000; ++i) {
    const double x = rng.Uniform(-700, 700);
    const double ref = std::exp(x);
    const double got = kernels::PortableExp(x);
    EXPECT_NEAR(got, ref, 4e-16 * ref) << "x=" << x;
  }
}

// DeltaTree's SoA planes: the release-store of size() must license plane
// reads of the published prefix while a writer keeps appending — the exact
// access pattern DeltaBackend::Start's batch scan performs. Run under tsan
// via the `concurrency` label.
TEST(DeltaTreePlanesTest, ConcurrentAppendAndBatchScan) {
  constexpr size_t kDim = 4;
  constexpr size_t kCapacity = 512;
  DeltaTree delta(kDim, kCapacity);

  std::thread writer([&delta] {
    Rng rng(55);
    for (size_t i = 0; i < kCapacity; ++i) {
      std::vector<double> mu(kDim), sigma(kDim);
      for (double& m : mu) m = rng.Uniform(0, 1);
      for (double& s : sigma) s = rng.Uniform(0.01, 0.1);
      ASSERT_TRUE(delta.Append(Pfv(i, std::move(mu), std::move(sigma))));
    }
  });

  Rng rng(56);
  Pfv q(0, std::vector<double>(kDim, 0.5), std::vector<double>(kDim, 0.05));
  for (int round = 0; round < 200; ++round) {
    const size_t n = delta.size();  // acquire: licenses planes[0, n)
    if (n == 0) continue;
    std::vector<double> out(n);
    kernels::JointBatchArgs args;
    args.mu = delta.mu_planes();
    args.sigma = delta.sigma_planes();
    args.stride = delta.plane_stride();
    args.n = n;
    args.dim = kDim;
    args.mu_q = q.mu.data();
    args.sigma_q = q.sigma.data();
    kernels::JointLogDensityBatch(args, out.data());
    // Cross-check the published prefix against the AoS oracle.
    for (size_t i = 0; i < n; ++i) {
      EXPECT_EQ(out[i], PfvJointLogDensity(delta.at(i), q)) << "slot " << i;
    }
  }
  writer.join();

  // Final full-prefix scan sees every appended object.
  EXPECT_EQ(delta.size(), kCapacity);
  std::vector<double> out(kCapacity);
  kernels::JointBatchArgs args;
  args.mu = delta.mu_planes();
  args.sigma = delta.sigma_planes();
  args.stride = delta.plane_stride();
  args.n = kCapacity;
  args.dim = kDim;
  args.mu_q = q.mu.data();
  args.sigma_q = q.sigma.data();
  kernels::JointLogDensityBatch(args, out.data());
  for (size_t i = 0; i < kCapacity; ++i) {
    EXPECT_EQ(out[i], PfvJointLogDensity(delta.at(i), q)) << "slot " << i;
  }
}

}  // namespace
}  // namespace gauss
