// GaussServe tests: concurrent batch results must be byte-identical to the
// sequential QueryMliq/QueryTiq loops, a multi-threaded stress run over one
// shared sharded pool must be clean (run with -DGAUSS_TSAN=ON to check under
// ThreadSanitizer), and the aggregate ServiceStats must add up.

#include <cmath>
#include <cstring>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "data/generators.h"
#include "data/workload.h"
#include "gausstree/gauss_tree.h"
#include "gausstree/mliq.h"
#include "gausstree/tiq.h"
#include "service/query_service.h"
#include "service/request_queue.h"
#include "storage/page_device.h"
#include "storage/buffer_pool.h"
#include "storage/sharded_buffer_pool.h"

namespace gauss {
namespace {

// One finalized tree on a shared device: built single-threaded through a
// BufferPool, then reattached through a ShardedBufferPool for serving.
class ServiceTest : public ::testing::Test {
 protected:
  static constexpr size_t kDim = 6;
  static constexpr size_t kObjects = 4000;

  void SetUp() override {
    ClusteredDatasetConfig config;
    config.size = kObjects;
    config.dim = kDim;
    config.cluster_count = 25;
    config.seed = 11;
    dataset_ = GenerateClusteredDataset(config);

    BufferPool build_pool(&device_, 1 << 14);
    GaussTree build_tree(&build_pool, kDim);
    build_tree.BulkLoad(dataset_);
    build_tree.Finalize();
    meta_page_ = build_tree.meta_page();

    WorkloadConfig wconfig;
    wconfig.query_count = 60;
    wconfig.seed = 5;
    workload_ = GenerateWorkload(dataset_, wconfig);
  }

  std::vector<QueryRequest> MakeBatch() const {
    std::vector<QueryRequest> batch;
    for (size_t i = 0; i < workload_.size(); ++i) {
      if (i % 2 == 0) {
        batch.push_back(QueryRequest::Mliq(workload_[i].query, /*k=*/3));
      } else {
        batch.push_back(QueryRequest::Tiq(workload_[i].query,
                                          /*threshold=*/0.2));
      }
    }
    return batch;
  }

  InMemoryPageDevice device_;
  PfvDataset dataset_{kDim};
  PageId meta_page_ = kInvalidPageId;
  std::vector<IdentificationQuery> workload_;
};

void ExpectSameItems(const std::vector<IdentificationResult>& got,
                     const std::vector<IdentificationResult>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].id, want[i].id);
    // Byte-identical, not approximately equal: the concurrent execution runs
    // the very same deterministic traversal.
    EXPECT_EQ(std::memcmp(&got[i].log_density, &want[i].log_density,
                          sizeof(double)),
              0);
    EXPECT_EQ(std::memcmp(&got[i].probability, &want[i].probability,
                          sizeof(double)),
              0);
    EXPECT_EQ(std::memcmp(&got[i].probability_error,
                          &want[i].probability_error, sizeof(double)),
              0);
  }
}

TEST_F(ServiceTest, ConcurrentBatchMatchesSequentialQueries) {
  ShardedBufferPool pool(&device_, 1 << 12);
  auto tree = GaussTree::Open(&pool, meta_page_);

  // Sequential ground truth through the plain query entry points.
  const std::vector<QueryRequest> batch = MakeBatch();
  std::vector<std::vector<IdentificationResult>> expected;
  for (const QueryRequest& req : batch) {
    if (req.kind == QueryKind::kMliq) {
      expected.push_back(QueryMliq(*tree, req.query, req.k, req.mliq).items);
    } else {
      expected.push_back(
          QueryTiq(*tree, req.query, req.threshold, req.tiq).items);
    }
  }

  QueryServiceOptions options;
  options.num_workers = 4;
  QueryService service(*tree, options);
  const BatchResult result = service.ExecuteBatch(batch);

  ASSERT_EQ(result.responses.size(), batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(result.responses[i].kind, batch[i].kind);
    ExpectSameItems(result.responses[i].items, expected[i]);
  }
}

TEST_F(ServiceTest, RepeatedConcurrentBatchesAreDeterministic) {
  ShardedBufferPool pool(&device_, 1 << 12);
  auto tree = GaussTree::Open(&pool, meta_page_);
  QueryServiceOptions options;
  options.num_workers = 8;
  options.queue_capacity = 16;  // force producer backpressure
  QueryService service(*tree, options);

  const std::vector<QueryRequest> batch = MakeBatch();
  const BatchResult first = service.ExecuteBatch(batch);
  for (int round = 0; round < 3; ++round) {
    const BatchResult again = service.ExecuteBatch(batch);
    ASSERT_EQ(again.responses.size(), first.responses.size());
    for (size_t i = 0; i < again.responses.size(); ++i) {
      ExpectSameItems(again.responses[i].items, first.responses[i].items);
    }
  }
}

// Stress: many workers over a deliberately tiny shared pool, so frames are
// constantly evicted and re-read while other workers hold pins. Run with
// -DGAUSS_TSAN=ON for the ThreadSanitizer check of the whole serving stack.
TEST_F(ServiceTest, StressTinySharedPoolUnderEvictionChurn) {
  ShardedBufferPool pool(&device_, /*capacity_pages=*/16, /*num_shards=*/4);
  auto tree = GaussTree::Open(&pool, meta_page_);
  QueryServiceOptions options;
  options.num_workers = 8;
  QueryService service(*tree, options);

  const std::vector<QueryRequest> batch = MakeBatch();
  std::vector<std::vector<IdentificationResult>> expected;
  for (const QueryRequest& req : batch) {
    if (req.kind == QueryKind::kMliq) {
      expected.push_back(QueryMliq(*tree, req.query, req.k, req.mliq).items);
    } else {
      expected.push_back(
          QueryTiq(*tree, req.query, req.threshold, req.tiq).items);
    }
  }

  // Several client threads submitting batches concurrently to one service.
  std::vector<std::thread> clients;
  for (int c = 0; c < 3; ++c) {
    clients.emplace_back([&] {
      for (int round = 0; round < 2; ++round) {
        const BatchResult result = service.ExecuteBatch(batch);
        ASSERT_EQ(result.responses.size(), batch.size());
        for (size_t i = 0; i < batch.size(); ++i) {
          ExpectSameItems(result.responses[i].items, expected[i]);
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_GT(pool.stats().evictions, 0u);  // the churn actually happened
}

TEST_F(ServiceTest, StatsTotalsAddUp) {
  ShardedBufferPool pool(&device_, 1 << 12);
  auto tree = GaussTree::Open(&pool, meta_page_);
  QueryServiceOptions options;
  options.num_workers = 4;
  QueryService service(*tree, options);

  const std::vector<QueryRequest> batch = MakeBatch();
  const BatchResult result = service.ExecuteBatch(batch);
  const ServiceStats& stats = result.stats;

  // Query-kind counts match the batch composition.
  uint64_t want_mliq = 0, want_tiq = 0;
  for (const QueryRequest& req : batch) {
    (req.kind == QueryKind::kMliq ? want_mliq : want_tiq) += 1;
  }
  EXPECT_EQ(stats.mliq_queries, want_mliq);
  EXPECT_EQ(stats.tiq_queries, want_tiq);
  EXPECT_EQ(stats.total_queries(), batch.size());

  // Work totals are the sums of the per-response counters.
  uint64_t nodes = 0, leaves = 0, objects = 0;
  for (const QueryResponse& resp : result.responses) {
    nodes += resp.nodes_visited;
    leaves += resp.leaf_nodes_visited;
    objects += resp.objects_evaluated;
    EXPECT_GT(resp.latency_ns, 0u);
  }
  EXPECT_EQ(stats.nodes_visited, nodes);
  EXPECT_EQ(stats.leaf_nodes_visited, leaves);
  EXPECT_EQ(stats.objects_evaluated, objects);

  // Every query visits at least the root, and every node visit is a cache
  // fetch, so the batch's logical reads cover the visited nodes.
  EXPECT_GE(stats.nodes_visited, batch.size());
  EXPECT_GE(stats.io.logical_reads, stats.nodes_visited);

  EXPECT_EQ(stats.latency.count, batch.size());
  EXPECT_GT(stats.wall_seconds, 0.0);
  EXPECT_GT(stats.qps, 0.0);
  EXPECT_GE(stats.latency.p99_us, stats.latency.p50_us);
  EXPECT_GE(stats.latency.max_us, stats.latency.p99_us);
  EXPECT_GT(stats.pages_per_query(), 0.0);
  EXPECT_FALSE(stats.ToString().empty());
}

TEST_F(ServiceTest, SingleWorkerRunsOverPlainBufferPool) {
  // One worker needs no thread-safe cache; the plain pool must work.
  BufferPool pool(&device_, 1 << 12);
  auto tree = GaussTree::Open(&pool, meta_page_);
  QueryServiceOptions options;
  options.num_workers = 1;
  QueryService service(*tree, options);
  const std::vector<QueryRequest> batch = MakeBatch();
  const BatchResult result = service.ExecuteBatch(batch);
  EXPECT_EQ(result.responses.size(), batch.size());
  EXPECT_EQ(result.stats.total_queries(), batch.size());
}

TEST_F(ServiceTest, EmptyBatchReturnsEmptyResult) {
  ShardedBufferPool pool(&device_, 1 << 12);
  auto tree = GaussTree::Open(&pool, meta_page_);
  QueryService service(*tree, {});
  const BatchResult result = service.ExecuteBatch({});
  EXPECT_TRUE(result.responses.empty());
  EXPECT_EQ(result.stats.total_queries(), 0u);
}

TEST(RequestQueueTest, PushPopRoundTrip) {
  RequestQueue queue(4);
  WorkItem in{nullptr, 42};
  EXPECT_TRUE(queue.Push(in));
  EXPECT_EQ(queue.size(), 1u);
  WorkItem out;
  EXPECT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out.index, 42u);
  EXPECT_EQ(queue.size(), 0u);
}

TEST(RequestQueueTest, CloseDrainsThenRejects) {
  RequestQueue queue(4);
  EXPECT_TRUE(queue.Push({nullptr, 1}));
  EXPECT_TRUE(queue.Push({nullptr, 2}));
  queue.Close();
  EXPECT_FALSE(queue.Push({nullptr, 3}));  // rejected after close
  WorkItem out;
  EXPECT_TRUE(queue.Pop(&out));  // drained in order
  EXPECT_EQ(out.index, 1u);
  EXPECT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out.index, 2u);
  EXPECT_FALSE(queue.Pop(&out));  // closed and empty
}

TEST(RequestQueueTest, BoundedPushBlocksUntilPop) {
  RequestQueue queue(1);
  EXPECT_TRUE(queue.Push({nullptr, 1}));
  std::thread producer([&] { EXPECT_TRUE(queue.Push({nullptr, 2})); });
  // The producer is blocked on the full queue until this pop frees a slot.
  WorkItem out;
  EXPECT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out.index, 1u);
  producer.join();
  EXPECT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out.index, 2u);
}

}  // namespace
}  // namespace gauss
