// GaussServe tests: concurrent batch results must be byte-identical to the
// sequential QueryMliq/QueryTiq loops, a multi-threaded stress run over one
// shared sharded pool must be clean (run with -DGAUSS_TSAN=ON to check under
// ThreadSanitizer), and the aggregate ServiceStats must add up.

#include <cmath>
#include <cstring>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "data/generators.h"
#include "data/workload.h"
#include "gausstree/gauss_tree.h"
#include "gausstree/mliq.h"
#include "gausstree/tiq.h"
#include "service/query.h"
#include "service/query_service.h"
#include "service/request_queue.h"
#include "service_test_util.h"
#include "storage/page_device.h"
#include "storage/buffer_pool.h"
#include "storage/sharded_buffer_pool.h"

namespace gauss {
namespace {

// One finalized tree on a shared device: built single-threaded through a
// BufferPool, then reattached through a ShardedBufferPool for serving.
class ServiceTest : public ::testing::Test {
 protected:
  static constexpr size_t kDim = 6;
  static constexpr size_t kObjects = 4000;

  void SetUp() override {
    ClusteredDatasetConfig config;
    config.size = kObjects;
    config.dim = kDim;
    config.cluster_count = 25;
    config.seed = 11;
    dataset_ = GenerateClusteredDataset(config);

    BufferPool build_pool(&device_, 1 << 14);
    GaussTree build_tree(&build_pool, kDim);
    build_tree.BulkLoad(dataset_);
    build_tree.Finalize();
    meta_page_ = build_tree.meta_page();

    WorkloadConfig wconfig;
    wconfig.query_count = 60;
    wconfig.seed = 5;
    workload_ = GenerateWorkload(dataset_, wconfig);
  }

  std::vector<Query> MakeBatch() const { return test::MakeMixedBatch(workload_); }

  InMemoryPageDevice device_;
  PfvDataset dataset_{kDim};
  PageId meta_page_ = kInvalidPageId;
  std::vector<IdentificationQuery> workload_;
};

using test::DirectAnswers;
using test::ExpectItemsBytesEqual;

TEST_F(ServiceTest, ConcurrentBatchMatchesSequentialQueries) {
  ShardedBufferPool pool(&device_, 1 << 12);
  auto tree = GaussTree::Open(&pool, meta_page_);

  // Sequential ground truth through the plain query entry points.
  const std::vector<Query> batch = MakeBatch();
  const auto expected = DirectAnswers(*tree, batch);

  QueryServiceOptions options;
  options.num_workers = 4;
  QueryService service(*tree, options);
  const BatchResult result = service.ExecuteBatch(batch);

  ASSERT_EQ(result.responses.size(), batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(result.responses[i].kind, batch[i].kind());
    EXPECT_EQ(result.responses[i].status, QueryResponse::Status::kOk);
    ExpectItemsBytesEqual(result.responses[i].items, expected[i]);
  }
}

TEST_F(ServiceTest, RepeatedConcurrentBatchesAreDeterministic) {
  ShardedBufferPool pool(&device_, 1 << 12);
  auto tree = GaussTree::Open(&pool, meta_page_);
  QueryServiceOptions options;
  options.num_workers = 8;
  options.queue_capacity = 16;  // force producer backpressure
  QueryService service(*tree, options);

  const std::vector<Query> batch = MakeBatch();
  const BatchResult first = service.ExecuteBatch(batch);
  for (int round = 0; round < 3; ++round) {
    const BatchResult again = service.ExecuteBatch(batch);
    ASSERT_EQ(again.responses.size(), first.responses.size());
    for (size_t i = 0; i < again.responses.size(); ++i) {
      ExpectItemsBytesEqual(again.responses[i].items, first.responses[i].items);
    }
  }
}

// Stress: many workers over a deliberately tiny shared pool, so frames are
// constantly evicted and re-read while other workers hold pins. Run with
// -DGAUSS_TSAN=ON for the ThreadSanitizer check of the whole serving stack.
TEST_F(ServiceTest, StressTinySharedPoolUnderEvictionChurn) {
  ShardedBufferPool pool(&device_, /*capacity_pages=*/16, /*num_shards=*/4);
  auto tree = GaussTree::Open(&pool, meta_page_);
  QueryServiceOptions options;
  options.num_workers = 8;
  QueryService service(*tree, options);

  const std::vector<Query> batch = MakeBatch();
  const auto expected = DirectAnswers(*tree, batch);

  // Several client threads submitting batches concurrently to one service.
  std::vector<std::thread> clients;
  for (int c = 0; c < 3; ++c) {
    clients.emplace_back([&] {
      for (int round = 0; round < 2; ++round) {
        const BatchResult result = service.ExecuteBatch(batch);
        ASSERT_EQ(result.responses.size(), batch.size());
        for (size_t i = 0; i < batch.size(); ++i) {
          ExpectItemsBytesEqual(result.responses[i].items, expected[i]);
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_GT(pool.stats().evictions, 0u);  // the churn actually happened
}

TEST_F(ServiceTest, StatsTotalsAddUp) {
  ShardedBufferPool pool(&device_, 1 << 12);
  auto tree = GaussTree::Open(&pool, meta_page_);
  QueryServiceOptions options;
  options.num_workers = 4;
  QueryService service(*tree, options);

  const std::vector<Query> batch = MakeBatch();
  const BatchResult result = service.ExecuteBatch(batch);
  const ServiceStats& stats = result.stats;

  // Query-kind counts match the batch composition.
  uint64_t want_mliq = 0, want_tiq = 0;
  for (const Query& query : batch) {
    (query.kind() == QueryKind::kMliq ? want_mliq : want_tiq) += 1;
  }
  EXPECT_EQ(stats.mliq_queries, want_mliq);
  EXPECT_EQ(stats.tiq_queries, want_tiq);
  EXPECT_EQ(stats.total_queries(), batch.size());
  EXPECT_EQ(stats.shed_queries, 0u);
  EXPECT_EQ(stats.deadline_exceeded_queries, 0u);

  // Work totals are the sums of the per-response counters.
  uint64_t nodes = 0, leaves = 0, objects = 0;
  for (const QueryResponse& resp : result.responses) {
    nodes += resp.stats.nodes_visited;
    leaves += resp.stats.leaf_nodes_visited;
    objects += resp.stats.objects_evaluated;
    EXPECT_GT(resp.latency_ns, 0u);
  }
  EXPECT_EQ(stats.nodes_visited, nodes);
  EXPECT_EQ(stats.leaf_nodes_visited, leaves);
  EXPECT_EQ(stats.objects_evaluated, objects);

  // Every query visits at least the root, and every node visit except the
  // pinned root (served from memory, one per query) is a cache fetch, so
  // the batch's logical reads cover the remaining visited nodes.
  EXPECT_GE(stats.nodes_visited, batch.size());
  EXPECT_GE(stats.io.logical_reads, stats.nodes_visited - batch.size());

  EXPECT_EQ(stats.latency.count, batch.size());
  EXPECT_GT(stats.wall_seconds, 0.0);
  EXPECT_GT(stats.qps, 0.0);
  EXPECT_GE(stats.latency.p99_us, stats.latency.p50_us);
  EXPECT_GE(stats.latency.max_us, stats.latency.p99_us);
  EXPECT_GT(stats.pages_per_query(), 0.0);
  EXPECT_FALSE(stats.ToString().empty());
}

TEST_F(ServiceTest, SingleWorkerRunsOverPlainBufferPool) {
  // One worker needs no thread-safe cache; the plain pool must work.
  BufferPool pool(&device_, 1 << 12);
  auto tree = GaussTree::Open(&pool, meta_page_);
  QueryServiceOptions options;
  options.num_workers = 1;
  QueryService service(*tree, options);
  const std::vector<Query> batch = MakeBatch();
  const BatchResult result = service.ExecuteBatch(batch);
  EXPECT_EQ(result.responses.size(), batch.size());
  EXPECT_EQ(result.stats.total_queries(), batch.size());
}

TEST_F(ServiceTest, EmptyBatchReturnsEmptyResult) {
  ShardedBufferPool pool(&device_, 1 << 12);
  auto tree = GaussTree::Open(&pool, meta_page_);
  QueryService service(*tree, {});
  const BatchResult result = service.ExecuteBatch({});
  EXPECT_TRUE(result.responses.empty());
  EXPECT_EQ(result.stats.total_queries(), 0u);
}

// A real (if never-executed) task to push through queue-level tests.
internal::QueryTask MakeTask() {
  return internal::QueryTask(Query::Mliq(Pfv(0, {0.0}, {1.0}), 1));
}

TEST(RequestQueueTest, PushPopRoundTrip) {
  RequestQueue queue(4);
  internal::QueryTask task = MakeTask();
  EXPECT_TRUE(queue.Push(&task));
  EXPECT_EQ(queue.size(), 1u);
  internal::QueryTask* out = nullptr;
  EXPECT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out, &task);
  EXPECT_EQ(queue.size(), 0u);
}

TEST(RequestQueueTest, CloseDrainsThenRejects) {
  RequestQueue queue(4);
  internal::QueryTask a = MakeTask(), b = MakeTask(), c = MakeTask();
  EXPECT_TRUE(queue.Push(&a));
  EXPECT_TRUE(queue.Push(&b));
  queue.Close();
  EXPECT_TRUE(queue.closed());
  EXPECT_FALSE(queue.Push(&c));  // rejected after close
  internal::QueryTask* out = nullptr;
  EXPECT_TRUE(queue.Pop(&out));  // drained in order
  EXPECT_EQ(out, &a);
  EXPECT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out, &b);
  EXPECT_FALSE(queue.Pop(&out));  // closed and empty
}

TEST(RequestQueueTest, CloseIsIdempotent) {
  RequestQueue queue(2);
  internal::QueryTask a = MakeTask();
  EXPECT_TRUE(queue.Push(&a));
  queue.Close();
  queue.Close();  // second close: no-op, no deadlock, still drains
  queue.Close();
  internal::QueryTask* out = nullptr;
  EXPECT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out, &a);
  EXPECT_FALSE(queue.Pop(&out));
}

TEST(RequestQueueTest, BoundedPushBlocksUntilPop) {
  RequestQueue queue(1);
  internal::QueryTask a = MakeTask(), b = MakeTask();
  EXPECT_TRUE(queue.Push(&a));
  std::thread producer([&] { EXPECT_TRUE(queue.Push(&b)); });
  // The producer is blocked on the full queue until this pop frees a slot.
  internal::QueryTask* out = nullptr;
  EXPECT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out, &a);
  producer.join();
  EXPECT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out, &b);
}

TEST(RequestQueueTest, TryPushRejectsWhenFullWithoutBlocking) {
  RequestQueue queue(2);
  internal::QueryTask a = MakeTask(), b = MakeTask(), c = MakeTask();
  EXPECT_TRUE(queue.TryPush(&a));
  EXPECT_TRUE(queue.TryPush(&b));
  EXPECT_FALSE(queue.TryPush(&c));  // full: immediate rejection, no wait
  internal::QueryTask* out = nullptr;
  EXPECT_TRUE(queue.Pop(&out));
  EXPECT_TRUE(queue.TryPush(&c));  // slot freed: accepted again
  queue.Close();
  internal::QueryTask d = MakeTask();
  EXPECT_FALSE(queue.TryPush(&d));  // closed: rejected
}

}  // namespace
}  // namespace gauss
