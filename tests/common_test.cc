#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/log_sum_exp.h"
#include "common/random.h"
#include "common/stopwatch.h"

namespace gauss {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.NextU64() == b.NextU64());
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, UniformRespectsRange) {
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.Uniform(-3.5, 2.25);
    EXPECT_GE(v, -3.5);
    EXPECT_LT(v, 2.25);
  }
}

TEST(RngTest, UniformIntCoversAllValuesWithoutBias) {
  Rng rng(9);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.UniformInt(10)];
  for (int c : counts) {
    EXPECT_GT(c, n / 10 - 600);
    EXPECT_LT(c, n / 10 + 600);
  }
}

TEST(RngTest, GaussianMomentsMatch) {
  Rng rng(10);
  const int n = 200000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Gaussian(2.0, 3.0);
    sum += v;
    sum2 += v * v;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 3.0, 0.05);
}

TEST(RngTest, ExponentialMeanMatches) {
  Rng rng(11);
  const int n = 200000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, SampleWithoutReplacementUnique) {
  Rng rng(12);
  const auto sample = rng.SampleWithoutReplacement(100, 40);
  EXPECT_EQ(sample.size(), 40u);
  std::set<size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 40u);
  for (size_t v : sample) EXPECT_LT(v, 100u);
}

TEST(RngTest, SampleWithoutReplacementFullRange) {
  Rng rng(13);
  const auto sample = rng.SampleWithoutReplacement(10, 10);
  std::set<size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
}

TEST(LogSumExpTest, MatchesDirectSumInSafeRange) {
  LogSumExp lse;
  const std::vector<double> values = {0.5, 1.25, 2.0, 0.01};
  double direct = 0.0;
  for (double v : values) {
    lse.Add(std::log(v));
    direct += v;
  }
  EXPECT_NEAR(lse.LogTotal(), std::log(direct), 1e-12);
}

TEST(LogSumExpTest, HandlesExtremeMagnitudes) {
  LogSumExp lse;
  lse.Add(-1000.0);
  lse.Add(-1001.0);
  // log(e^-1000 + e^-1001) = -1000 + log(1 + e^-1)
  EXPECT_NEAR(lse.LogTotal(), -1000.0 + std::log1p(std::exp(-1.0)), 1e-12);
}

TEST(LogSumExpTest, DominantTermWins) {
  LogSumExp lse;
  lse.Add(-2000.0);
  lse.Add(0.0);
  EXPECT_NEAR(lse.LogTotal(), 0.0, 1e-12);
}

TEST(LogSumExpTest, EmptyIsMinusInfinity) {
  LogSumExp lse;
  EXPECT_TRUE(std::isinf(lse.LogTotal()));
  EXPECT_LT(lse.LogTotal(), 0.0);
}

TEST(LogSumExpTest, IgnoresMinusInfinityTerms) {
  LogSumExp lse;
  lse.Add(-std::numeric_limits<double>::infinity());
  lse.Add(std::log(2.0));
  EXPECT_NEAR(lse.LogTotal(), std::log(2.0), 1e-12);
}

TEST(LogSumExpTest, OrderIndependent) {
  std::vector<double> logs = {-5.0, -1.0, -300.0, -2.5, -0.1};
  LogSumExp forward, backward;
  for (double v : logs) forward.Add(v);
  std::reverse(logs.begin(), logs.end());
  for (double v : logs) backward.Add(v);
  EXPECT_NEAR(forward.LogTotal(), backward.LogTotal(), 1e-12);
}

TEST(KahanSumTest, CompensatesSmallTerms) {
  KahanSum sum;
  sum.Add(1.0);
  for (int i = 0; i < 1000000; ++i) sum.Add(1e-16);
  EXPECT_NEAR(sum.Value(), 1.0 + 1e-10, 1e-13);
}

TEST(KahanSumTest, AddSubtractRoundTrips) {
  KahanSum sum;
  Rng rng(14);
  std::vector<double> values;
  for (int i = 0; i < 1000; ++i) {
    values.push_back(rng.Uniform(0.0, 1.0));
    sum.Add(values.back());
  }
  for (double v : values) sum.Subtract(v);
  EXPECT_NEAR(sum.Value(), 0.0, 1e-12);
}

TEST(StopwatchTest, MeasuresElapsedTime) {
  Stopwatch sw;
  volatile double x = 0.0;
  for (int i = 0; i < 1000000; ++i) x = x + 1.0;
  EXPECT_GT(sw.ElapsedSeconds(), 0.0);
}

TEST(CpuStopwatchTest, MeasuresCpuTime) {
  CpuStopwatch sw;
  volatile double x = 0.0;
  for (int i = 0; i < 1000000; ++i) x = x + 1.0;
  EXPECT_GT(sw.ElapsedSeconds(), 0.0);
}

}  // namespace
}  // namespace gauss
