#include <cmath>

#include <gtest/gtest.h>

#include "common/random.h"
#include "pfv/pfv.h"
#include "pfv/pfv_file.h"
#include "storage/buffer_pool.h"
#include "storage/page_device.h"

namespace gauss {
namespace {

Pfv MakePfv(uint64_t id, std::vector<double> mu, std::vector<double> sigma) {
  return Pfv(id, std::move(mu), std::move(sigma));
}

TEST(PfvTest, ValidityChecks) {
  Pfv good = MakePfv(1, {0.5, 1.0}, {0.1, 0.2});
  EXPECT_TRUE(good.Valid());

  Pfv mismatched;
  mismatched.mu = {1.0, 2.0};
  mismatched.sigma = {0.1};
  EXPECT_FALSE(mismatched.Valid());

  Pfv zero_sigma;
  zero_sigma.mu = {1.0};
  zero_sigma.sigma = {0.0};
  EXPECT_FALSE(zero_sigma.Valid());

  Pfv nan_mu;
  nan_mu.mu = {std::nan("")};
  nan_mu.sigma = {0.1};
  EXPECT_FALSE(nan_mu.Valid());
}

TEST(PfvTest, MeanSquaredDistance) {
  const Pfv a = MakePfv(1, {0.0, 0.0, 0.0}, {1, 1, 1});
  const Pfv b = MakePfv(2, {1.0, 2.0, 2.0}, {1, 1, 1});
  EXPECT_DOUBLE_EQ(MeanSquaredDistance(a, b), 1.0 + 4.0 + 4.0);
}

TEST(PfvTest, JointLogDensitySymmetric) {
  const Pfv a = MakePfv(1, {0.2, 0.8}, {0.1, 0.3});
  const Pfv b = MakePfv(2, {0.3, 0.7}, {0.2, 0.1});
  EXPECT_DOUBLE_EQ(PfvJointLogDensity(a, b), PfvJointLogDensity(b, a));
}

TEST(PfvDatasetTest, AddAndAccess) {
  PfvDataset dataset(2);
  dataset.Add(MakePfv(10, {0.1, 0.2}, {0.01, 0.02}));
  dataset.Add(MakePfv(11, {0.3, 0.4}, {0.03, 0.04}));
  EXPECT_EQ(dataset.size(), 2u);
  EXPECT_EQ(dataset[0].id, 10u);
  EXPECT_EQ(dataset[1].mu[1], 0.4);
}

class PfvFileTest : public ::testing::Test {
 protected:
  PfvFileTest() : device_(1024), pool_(&device_, 64) {}

  InMemoryPageDevice device_;
  BufferPool pool_;
};

TEST_F(PfvFileTest, AppendReadRoundTrip) {
  PfvFile file(&pool_, 3);
  Rng rng(41);
  std::vector<Pfv> originals;
  for (uint64_t i = 0; i < 100; ++i) {
    std::vector<double> mu(3), sigma(3);
    for (double& m : mu) m = rng.Uniform(-10, 10);
    for (double& s : sigma) s = rng.Uniform(0.01, 2.0);
    originals.push_back(MakePfv(i * 7 + 1, mu, sigma));
    file.Append(originals.back());
  }
  EXPECT_EQ(file.size(), 100u);
  for (size_t i = 0; i < originals.size(); ++i) {
    const Pfv read = file.Read(i);
    EXPECT_EQ(read.id, originals[i].id);
    EXPECT_EQ(read.mu, originals[i].mu);
    EXPECT_EQ(read.sigma, originals[i].sigma);
  }
}

TEST_F(PfvFileTest, ForEachVisitsAllInOrder) {
  PfvFile file(&pool_, 2);
  for (uint64_t i = 0; i < 50; ++i) {
    file.Append(MakePfv(i, {static_cast<double>(i), 0.0}, {0.1, 0.1}));
  }
  uint64_t expected = 0;
  file.ForEach([&](const Pfv& pfv) {
    EXPECT_EQ(pfv.id, expected);
    ++expected;
  });
  EXPECT_EQ(expected, 50u);
}

TEST_F(PfvFileTest, PageCountMatchesCapacity) {
  PfvFile file(&pool_, 2);
  // Record: 8 + 2*2*8 = 40 bytes; payload 1020 -> 25 records/page.
  EXPECT_EQ(file.records_per_page(), 25u);
  for (uint64_t i = 0; i < 51; ++i) {
    file.Append(MakePfv(i, {0.0, 0.0}, {0.1, 0.1}));
  }
  EXPECT_EQ(file.page_count(), 3u);  // 25 + 25 + 1
}

TEST_F(PfvFileTest, ScanChargesOneFetchPerPage) {
  PfvFile file(&pool_, 2);
  for (uint64_t i = 0; i < 50; ++i) {
    file.Append(MakePfv(i, {0.0, 0.0}, {0.1, 0.1}));
  }
  pool_.Clear();
  pool_.ResetStats();
  size_t seen = 0;
  file.ForEach([&](const Pfv&) { ++seen; });
  EXPECT_EQ(seen, 50u);
  EXPECT_EQ(pool_.stats().logical_reads, file.page_count());
  EXPECT_EQ(pool_.stats().physical_reads, file.page_count());
}

TEST_F(PfvFileTest, AppendAllMatchesDataset) {
  PfvDataset dataset(2);
  for (uint64_t i = 0; i < 10; ++i) {
    dataset.Add(MakePfv(i, {0.1 * i, 0.2 * i}, {0.5, 0.5}));
  }
  PfvFile file(&pool_, 2);
  file.AppendAll(dataset);
  EXPECT_EQ(file.size(), dataset.size());
  EXPECT_EQ(file.Read(9).mu[0], dataset[9].mu[0]);
}

TEST(PfvFileHighDimTest, WorksAtPaperDimensionality) {
  // 27-d records (440 bytes) on 8 KiB pages: 18 records per page.
  InMemoryPageDevice device(kDefaultPageSize);
  BufferPool pool(&device, 16);
  PfvFile file(&pool, 27);
  EXPECT_EQ(file.records_per_page(), 18u);
  std::vector<double> mu(27, 0.5), sigma(27, 0.05);
  for (uint64_t i = 0; i < 100; ++i) file.Append(Pfv(i, mu, sigma));
  EXPECT_EQ(file.page_count(), 6u);  // ceil(100/18)
}

}  // namespace
}  // namespace gauss
