// Concurrency tests for live ingest (api/live_ingest.h), under the
// `concurrency` ctest label so the tsan/asan presets inherit them: the
// epoch-reclamation protocol (deterministic: in-flight queries admitted to
// the old epoch must all complete while a merge retires it), the full
// concurrent insert + query + background-merge stress, typed kDeltaFull
// backpressure, multi-session engine sharing — and the lifecycle fix that
// Serve()-then-Insert() without ingest reports typed kFinalized instead of
// aborting the process.

#include <atomic>
#include <cstdint>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "api/gauss_db.h"
#include "data/generators.h"
#include "service_test_util.h"

namespace gauss {
namespace {

PfvDataset MakeDataset(size_t size, size_t dim, uint64_t seed) {
  ClusteredDatasetConfig config;
  config.size = size;
  config.dim = dim;
  config.cluster_count = 6;
  config.seed = seed;
  return GenerateClusteredDataset(config);
}

std::vector<Pfv> MakeExtras(size_t count, size_t dim, uint64_t first_id,
                            uint64_t seed) {
  const PfvDataset raw = MakeDataset(count, dim, seed);
  std::vector<Pfv> extras;
  extras.reserve(count);
  for (size_t i = 0; i < raw.size(); ++i) {
    Pfv pfv = raw[i];
    pfv.id = first_id + i;
    extras.push_back(std::move(pfv));
  }
  return extras;
}

// The satellite lifecycle fix: enrolling against a statically served
// database is an operational race, not API misuse — it must come back as
// InsertResult{kFinalized}, never abort, with or without a session.
TEST(IngestLifecycleTest, InsertAfterServeReportsTypedFinalized) {
  const PfvDataset dataset = MakeDataset(200, 3, /*seed=*/11);
  GaussDb db = GaussDb::CreateInMemory(3);
  db.Build(dataset);
  Session session = db.Serve({.num_workers = 2});

  const Pfv late(999999, std::vector<double>(3, 0.5),
                 std::vector<double>(3, 0.1));
  const InsertResult via_db = db.Insert(late);
  EXPECT_EQ(via_db.outcome, InsertOutcome::kFinalized);
  EXPECT_FALSE(via_db.ok());
  EXPECT_FALSE(static_cast<bool>(via_db));
  EXPECT_FALSE(via_db.message.empty());
  EXPECT_STREQ(InsertOutcomeName(via_db.outcome), "finalized");

  const InsertResult via_session = session.Insert(late);
  EXPECT_EQ(via_session.outcome, InsertOutcome::kFinalized);

  // The static session reports zeroed ingest counters, not garbage.
  const IngestStats stats = session.ingest_stats();
  EXPECT_EQ(stats.delta_size, 0u);
  EXPECT_EQ(stats.epoch, 0u);
  EXPECT_FALSE(session.live_ingest());

  // The database still serves.
  const auto response = session.Submit(Query::Mliq(dataset[0], 3)).get();
  EXPECT_EQ(response.status, QueryResponse::Status::kOk);
}

// Malformed input stays typed in every phase.
TEST(IngestLifecycleTest, MalformedInsertsReportTypedErrors) {
  GaussDb db = GaussDb::CreateInMemory(3);
  const Pfv wrong_dim(1, std::vector<double>(4, 0.5),
                      std::vector<double>(4, 0.1));
  EXPECT_EQ(db.Insert(wrong_dim).outcome, InsertOutcome::kDimensionMismatch);
  Pfv bad_sigma(2, std::vector<double>(3, 0.5), std::vector<double>(3, 0.1));
  bad_sigma.sigma[1] = 0.0;
  EXPECT_EQ(db.Insert(bad_sigma).outcome, InsertOutcome::kInvalidPfv);
  // Valid build-phase insert still routes to the tree.
  const Pfv good(3, std::vector<double>(3, 0.5), std::vector<double>(3, 0.1));
  const InsertResult built = db.Insert(good);
  EXPECT_EQ(built.outcome, InsertOutcome::kRoutedToBuild);
  EXPECT_TRUE(built.ok());
  EXPECT_EQ(db.size(), 1u);
}

// Deterministic epoch reclamation: admit a wave of queries against epoch 1,
// then merge on this thread. RetireEpoch must wait for that wave (the old
// coordinator drains before its stacks die), so every future completes kOk
// even though its epoch was superseded mid-flight; queries admitted after
// the merge run against epoch 2. No sleeps, no timing assumptions — under
// tsan this is the reclamation race made reliably visible.
TEST(IngestConcurrencyTest, EpochReclamationDrainsInFlightQueries) {
  const PfvDataset base = MakeDataset(600, 3, /*seed=*/21);
  const std::vector<Pfv> extras =
      MakeExtras(64, 3, /*first_id=*/500000, /*seed=*/22);

  GaussDbOptions options;
  options.shards.num_shards = 2;
  options.ingest.enabled = true;
  options.ingest.delta_capacity = 256;
  options.ingest.merge_policy = MergePolicy::kManual;
  GaussDb db = GaussDb::CreateInMemory(3, options);
  db.Build(base);
  Session live = db.Serve({.num_workers = 2, .coordinator_threads = 2});

  for (const Pfv& pfv : extras) {
    ASSERT_EQ(db.Insert(pfv).outcome, InsertOutcome::kRoutedToDelta);
  }
  ASSERT_EQ(live.ingest_stats().epoch, 1u);

  // A wave of streaming queries admitted to epoch 1...
  std::vector<std::future<QueryResponse>> in_flight;
  for (size_t i = 0; i < 32; ++i) {
    in_flight.push_back(
        live.Submit(Query::Mliq(extras[i % extras.size()], 3)));
  }
  // ...raced by the epoch swap + retirement.
  ASSERT_TRUE(db.MergeIngest());
  EXPECT_EQ(live.ingest_stats().epoch, 2u);
  EXPECT_EQ(live.ingest_stats().delta_size, 0u);

  for (std::future<QueryResponse>& future : in_flight) {
    const QueryResponse response = future.get();
    EXPECT_EQ(response.status, QueryResponse::Status::kOk);
  }
  // Queries after the swap see the merged base: same object count.
  EXPECT_EQ(db.size(), base.size() + extras.size());
  const auto after = live.Submit(Query::Mliq(extras[0], 1)).get();
  ASSERT_EQ(after.status, QueryResponse::Status::kOk);
  ASSERT_EQ(after.items.size(), 1u);
  EXPECT_EQ(after.items[0].id, extras[0].id);
}

// The acceptance stress: inserters, query threads, and the background merge
// thread all running against one engine. Everything must stay typed and
// race-free (tsan/asan inherit this test), every accepted insert must be in
// the database at the end, and at least one background merge must complete
// while traffic runs.
TEST(IngestConcurrencyTest, ConcurrentInsertQueryMergeStress) {
  constexpr size_t kInserters = 2;
  constexpr size_t kPerInserter = 150;
  const PfvDataset base = MakeDataset(500, 3, /*seed=*/31);

  GaussDbOptions options;
  options.shards.num_shards = 2;
  options.ingest.enabled = true;
  options.ingest.delta_capacity = 128;
  options.ingest.merge_threshold = 48;
  options.ingest.merge_policy = MergePolicy::kBackground;
  GaussDb db = GaussDb::CreateInMemory(3, options);
  db.Build(base);
  Session live = db.Serve({.num_workers = 4, .coordinator_threads = 2});

  std::atomic<bool> done{false};
  std::atomic<uint64_t> accepted{0};
  std::atomic<uint64_t> queried{0};

  std::vector<std::thread> inserters;
  for (size_t t = 0; t < kInserters; ++t) {
    inserters.emplace_back([&db, &accepted, t] {
      const std::vector<Pfv> extras = MakeExtras(
          kPerInserter, 3, /*first_id=*/600000 + t * 100000, /*seed=*/40 + t);
      for (const Pfv& pfv : extras) {
        for (;;) {
          const InsertResult result = db.Insert(pfv);
          if (result.outcome == InsertOutcome::kRoutedToDelta) {
            accepted.fetch_add(1, std::memory_order_relaxed);
            break;
          }
          // Backpressure: the merge is behind; yield and retry.
          ASSERT_EQ(result.outcome, InsertOutcome::kDeltaFull)
              << result.message;
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
      }
    });
  }

  std::vector<std::thread> queriers;
  for (size_t t = 0; t < 2; ++t) {
    queriers.emplace_back([&live, &base, &done, &queried, t] {
      size_t i = t;
      while (!done.load(std::memory_order_relaxed)) {
        const QueryResponse response =
            live.Submit(Query::Mliq(base[i % base.size()], 3)).get();
        ASSERT_EQ(response.status, QueryResponse::Status::kOk);
        ASSERT_LE(response.stats.denominator_lo,
                  response.stats.denominator_hi);
        queried.fetch_add(1, std::memory_order_relaxed);
        i += 7;
      }
    });
  }

  for (std::thread& thread : inserters) thread.join();
  done.store(true, std::memory_order_relaxed);
  for (std::thread& thread : queriers) thread.join();

  EXPECT_EQ(accepted.load(), kInserters * kPerInserter);
  EXPECT_GT(queried.load(), 0u);

  // Drain whatever the background thread has not merged yet, then verify
  // nothing was lost across all the epoch swaps.
  db.MergeIngest();
  test::SpinUntil([&db] { return db.ingest_stats().delta_size == 0; });
  EXPECT_EQ(db.size(), base.size() + kInserters * kPerInserter);
  EXPECT_GE(db.ingest_stats().merges_completed, 1u);
  EXPECT_EQ(db.ingest_stats().inserts_accepted,
            kInserters * kPerInserter);
}

// Typed backpressure: a full delta rejects with kDeltaFull until a merge
// drains it, and the rejected object is genuinely not in the database.
TEST(IngestConcurrencyTest, DeltaFullBackpressureIsTypedAndRecoverable) {
  const PfvDataset base = MakeDataset(100, 3, /*seed=*/51);
  GaussDbOptions options;
  options.ingest.enabled = true;
  options.ingest.delta_capacity = 4;
  options.ingest.merge_policy = MergePolicy::kManual;
  GaussDb db = GaussDb::CreateInMemory(3, options);
  db.Build(base);
  Session live = db.Serve({.num_workers = 2});

  const std::vector<Pfv> extras =
      MakeExtras(5, 3, /*first_id=*/700000, /*seed=*/52);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(db.Insert(extras[i]).outcome, InsertOutcome::kRoutedToDelta);
  }
  const InsertResult full = db.Insert(extras[4]);
  EXPECT_EQ(full.outcome, InsertOutcome::kDeltaFull);
  EXPECT_FALSE(full.ok());
  EXPECT_EQ(db.size(), base.size() + 4);
  EXPECT_EQ(live.ingest_stats().merge_backlog, 4u);  // kManual: all buffered

  ASSERT_TRUE(db.MergeIngest());
  EXPECT_EQ(db.Insert(extras[4]).outcome, InsertOutcome::kRoutedToDelta);
  EXPECT_EQ(db.size(), base.size() + 5);
}

// Serve() called twice with ingest: both sessions share one engine — an
// insert through either is visible to both, and both survive a merge.
TEST(IngestConcurrencyTest, RepeatedServeSharesOneEngine) {
  const PfvDataset base = MakeDataset(150, 3, /*seed=*/61);
  GaussDbOptions options;
  options.ingest.enabled = true;
  options.ingest.merge_policy = MergePolicy::kManual;
  GaussDb db = GaussDb::CreateInMemory(3, options);
  db.Build(base);
  Session first = db.Serve({.num_workers = 2});
  Session second = db.Serve({.num_workers = 2});

  const std::vector<Pfv> extras =
      MakeExtras(8, 3, /*first_id=*/800000, /*seed=*/62);
  for (const Pfv& pfv : extras) {
    ASSERT_EQ(first.Insert(pfv).outcome, InsertOutcome::kRoutedToDelta);
  }
  EXPECT_EQ(second.ingest_stats().delta_size, extras.size());
  EXPECT_EQ(first.ingest_stats().epoch, second.ingest_stats().epoch);

  ASSERT_TRUE(db.MergeIngest());
  for (Session* session : {&first, &second}) {
    const auto response =
        session->Submit(Query::Mliq(extras[3], 1).Accuracy(1e-4)).get();
    ASSERT_EQ(response.status, QueryResponse::Status::kOk);
    ASSERT_EQ(response.items.size(), 1u);
    EXPECT_EQ(response.items[0].id, extras[3].id);
  }
}

}  // namespace
}  // namespace gauss
