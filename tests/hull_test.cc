#include <cmath>

#include <gtest/gtest.h>

#include "common/random.h"
#include "math/gaussian.h"
#include "math/hull.h"

namespace gauss {
namespace {

DimBounds MakeBounds(double mu_lo, double mu_hi, double sg_lo, double sg_hi) {
  DimBounds b;
  b.mu_lo = mu_lo;
  b.mu_hi = mu_hi;
  b.sigma_lo = sg_lo;
  b.sigma_hi = sg_hi;
  return b;
}

// Brute-force maximum/minimum over a dense grid of (mu, sigma) pairs inside
// the bounds — the oracle the closed-form hull is checked against.
double BruteMax(double x, const DimBounds& b, int grid = 400) {
  double best = 0.0;
  for (int i = 0; i <= grid; ++i) {
    const double mu = b.mu_lo + (b.mu_hi - b.mu_lo) * i / grid;
    for (int j = 0; j <= grid; ++j) {
      const double sigma = b.sigma_lo + (b.sigma_hi - b.sigma_lo) * j / grid;
      best = std::max(best, GaussianPdf(x, mu, sigma));
    }
  }
  return best;
}

double BruteMin(double x, const DimBounds& b, int grid = 400) {
  double best = std::numeric_limits<double>::infinity();
  for (int i = 0; i <= grid; ++i) {
    const double mu = b.mu_lo + (b.mu_hi - b.mu_lo) * i / grid;
    for (int j = 0; j <= grid; ++j) {
      const double sigma = b.sigma_lo + (b.sigma_hi - b.sigma_lo) * j / grid;
      best = std::min(best, GaussianPdf(x, mu, sigma));
    }
  }
  return best;
}

class HullCaseTest : public ::testing::Test {
 protected:
  // mu in [2, 4], sigma in [0.5, 1.5]: the seven Lemma 2 regions are
  // x < 0.5 | [0.5, 1.5) | [1.5, 2) | [2, 4) | [4, 4.5) | [4.5, 5.5) | >= 5.5
  const DimBounds b_ = MakeBounds(2.0, 4.0, 0.5, 1.5);
};

TEST_F(HullCaseTest, CaseI_FarLeftUsesMaxSigma) {
  const double x = -1.0;  // < mu_lo - sigma_hi = 0.5
  EXPECT_DOUBLE_EQ(UpperHull(x, b_), GaussianPdf(x, 2.0, 1.5));
}

TEST_F(HullCaseTest, CaseII_WedgeUsesDistanceAsSigma) {
  const double x = 1.0;  // in [0.5, 1.5)
  EXPECT_DOUBLE_EQ(UpperHull(x, b_), GaussianPdf(x, 2.0, 2.0 - x));
  // The wedge value is the sigma-critical peak 1/(sqrt(2 pi e) dist).
  EXPECT_NEAR(UpperHull(x, b_), kInvSqrt2PiE / (2.0 - x), 1e-15);
}

TEST_F(HullCaseTest, CaseIII_ShoulderUsesMinSigma) {
  const double x = 1.7;  // in [1.5, 2)
  EXPECT_DOUBLE_EQ(UpperHull(x, b_), GaussianPdf(x, 2.0, 0.5));
}

TEST_F(HullCaseTest, CaseIV_PlateauIsPeakOfMinSigma) {
  for (double x : {2.0, 2.5, 3.0, 3.999}) {
    EXPECT_DOUBLE_EQ(UpperHull(x, b_), 1.0 / (kSqrt2Pi * 0.5));
  }
}

TEST_F(HullCaseTest, CaseV_RightShoulder) {
  const double x = 4.3;  // in [4, 4.5)
  EXPECT_DOUBLE_EQ(UpperHull(x, b_), GaussianPdf(x, 4.0, 0.5));
}

TEST_F(HullCaseTest, CaseVI_RightWedge) {
  const double x = 5.0;  // in [4.5, 5.5)
  EXPECT_DOUBLE_EQ(UpperHull(x, b_), GaussianPdf(x, 4.0, x - 4.0));
}

TEST_F(HullCaseTest, CaseVII_FarRight) {
  const double x = 8.0;  // >= 5.5
  EXPECT_DOUBLE_EQ(UpperHull(x, b_), GaussianPdf(x, 4.0, 1.5));
}

TEST_F(HullCaseTest, ContinuousAcrossCaseBoundaries) {
  for (double boundary : {0.5, 1.5, 2.0, 4.0, 4.5, 5.5}) {
    const double eps = 1e-9;
    EXPECT_NEAR(UpperHull(boundary - eps, b_), UpperHull(boundary + eps, b_),
                1e-6);
  }
}

TEST(HullPropertyTest, UpperHullDominatesEveryMemberGaussian) {
  Rng rng(21);
  for (int trial = 0; trial < 200; ++trial) {
    const double mu_lo = rng.Uniform(-3, 3);
    const double mu_hi = mu_lo + rng.Uniform(0, 2);
    const double sg_lo = rng.Uniform(0.05, 1.0);
    const double sg_hi = sg_lo + rng.Uniform(0, 1.0);
    const DimBounds b = MakeBounds(mu_lo, mu_hi, sg_lo, sg_hi);
    const double mu = rng.Uniform(mu_lo, mu_hi);
    const double sigma = rng.Uniform(sg_lo, sg_hi);
    const double x = rng.Uniform(mu_lo - 5, mu_hi + 5);
    EXPECT_GE(UpperHull(x, b) * (1 + 1e-12) + 1e-300,
              GaussianPdf(x, mu, sigma));
  }
}

TEST(HullPropertyTest, LowerHullIsDominatedByEveryMemberGaussian) {
  Rng rng(22);
  for (int trial = 0; trial < 200; ++trial) {
    const double mu_lo = rng.Uniform(-3, 3);
    const double mu_hi = mu_lo + rng.Uniform(0, 2);
    const double sg_lo = rng.Uniform(0.05, 1.0);
    const double sg_hi = sg_lo + rng.Uniform(0, 1.0);
    const DimBounds b = MakeBounds(mu_lo, mu_hi, sg_lo, sg_hi);
    const double mu = rng.Uniform(mu_lo, mu_hi);
    const double sigma = rng.Uniform(sg_lo, sg_hi);
    const double x = rng.Uniform(mu_lo - 5, mu_hi + 5);
    EXPECT_LE(LowerHull(x, b), GaussianPdf(x, mu, sigma) * (1 + 1e-12));
  }
}

TEST(HullPropertyTest, UpperHullMatchesBruteForceMaximum) {
  Rng rng(23);
  for (int trial = 0; trial < 20; ++trial) {
    const double mu_lo = rng.Uniform(-2, 2);
    const double mu_hi = mu_lo + rng.Uniform(0.1, 2);
    const double sg_lo = rng.Uniform(0.1, 0.8);
    const double sg_hi = sg_lo + rng.Uniform(0.1, 0.8);
    const DimBounds b = MakeBounds(mu_lo, mu_hi, sg_lo, sg_hi);
    for (int xi = 0; xi < 10; ++xi) {
      const double x = rng.Uniform(mu_lo - 4, mu_hi + 4);
      const double closed = UpperHull(x, b);
      const double brute = BruteMax(x, b);
      EXPECT_GE(closed * (1 + 1e-9), brute);
      EXPECT_NEAR(closed, brute, 0.01 * closed + 1e-12);
    }
  }
}

TEST(HullPropertyTest, LowerHullMatchesBruteForceMinimum) {
  Rng rng(24);
  for (int trial = 0; trial < 20; ++trial) {
    const double mu_lo = rng.Uniform(-2, 2);
    const double mu_hi = mu_lo + rng.Uniform(0.1, 2);
    const double sg_lo = rng.Uniform(0.1, 0.8);
    const double sg_hi = sg_lo + rng.Uniform(0.1, 0.8);
    const DimBounds b = MakeBounds(mu_lo, mu_hi, sg_lo, sg_hi);
    for (int xi = 0; xi < 10; ++xi) {
      const double x = rng.Uniform(mu_lo - 4, mu_hi + 4);
      const double closed = LowerHull(x, b);
      const double brute = BruteMin(x, b);
      EXPECT_LE(closed, brute * (1 + 1e-9) + 1e-300);
      EXPECT_NEAR(closed, brute, 0.01 * brute + 1e-12);
    }
  }
}

TEST(HullPropertyTest, DegenerateBoxEqualsTheSingleGaussian) {
  // A box collapsed to one (mu, sigma) point: hull == pdf everywhere.
  const DimBounds b = MakeBounds(1.0, 1.0, 0.3, 0.3);
  Rng rng(25);
  for (int i = 0; i < 100; ++i) {
    const double x = rng.Uniform(-4, 6);
    EXPECT_NEAR(UpperHull(x, b), GaussianPdf(x, 1.0, 0.3), 1e-15);
    EXPECT_NEAR(LowerHull(x, b), GaussianPdf(x, 1.0, 0.3), 1e-15);
  }
}

TEST(HullPropertyTest, LogHullAgreesWithLogOfHull) {
  Rng rng(26);
  const DimBounds b = MakeBounds(0.0, 1.0, 0.2, 0.6);
  for (int i = 0; i < 100; ++i) {
    const double x = rng.Uniform(-3, 4);
    EXPECT_NEAR(LogUpperHull(x, b), std::log(UpperHull(x, b)), 1e-12);
    EXPECT_NEAR(LogLowerHull(x, b), std::log(LowerHull(x, b)), 1e-12);
  }
}

TEST(HullPropertyTest, WiderBoxNeverLowersUpperHull) {
  // Hull monotonicity under box inclusion: the query machinery scales every
  // density by the root hull and relies on child hull <= parent hull.
  Rng rng(27);
  for (int trial = 0; trial < 100; ++trial) {
    const DimBounds inner = MakeBounds(rng.Uniform(-1, 0), rng.Uniform(0, 1),
                                       rng.Uniform(0.2, 0.5),
                                       rng.Uniform(0.5, 0.9));
    DimBounds outer = inner;
    outer.mu_lo -= rng.Uniform(0, 1);
    outer.mu_hi += rng.Uniform(0, 1);
    outer.sigma_lo = std::max(0.01, outer.sigma_lo - rng.Uniform(0, 0.1));
    outer.sigma_hi += rng.Uniform(0, 1);
    const double x = rng.Uniform(-4, 4);
    EXPECT_GE(UpperHull(x, outer) * (1 + 1e-12), UpperHull(x, inner));
    EXPECT_LE(LowerHull(x, outer), LowerHull(x, inner) * (1 + 1e-12) + 1e-300);
  }
}

TEST(QueryAdjustedBoundsTest, ShiftsSigmaRangeMonotonically) {
  const DimBounds b = MakeBounds(0.0, 1.0, 0.2, 0.6);
  const DimBounds conv = QueryAdjustedBounds(b, 0.3, SigmaPolicy::kConvolution);
  EXPECT_NEAR(conv.sigma_lo, std::sqrt(0.2 * 0.2 + 0.3 * 0.3), 1e-15);
  EXPECT_NEAR(conv.sigma_hi, std::sqrt(0.6 * 0.6 + 0.3 * 0.3), 1e-15);
  const DimBounds add = QueryAdjustedBounds(b, 0.3, SigmaPolicy::kAdditive);
  EXPECT_NEAR(add.sigma_lo, 0.5, 1e-15);
  EXPECT_NEAR(add.sigma_hi, 0.9, 1e-15);
  EXPECT_LE(conv.sigma_lo, add.sigma_lo);
}

TEST(JointHullTest, BoundsTheJointDensityOfContainedObjects) {
  // Multivariate: for pfv inside the box, the joint hulls must bracket the
  // joint density against any query.
  Rng rng(28);
  const size_t d = 5;
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<DimBounds> bounds(d);
    std::vector<double> mu_v(d), sg_v(d), mu_q(d), sg_q(d);
    for (size_t i = 0; i < d; ++i) {
      const double mu_lo = rng.Uniform(-2, 2);
      const double mu_hi = mu_lo + rng.Uniform(0, 1);
      const double sg_lo = rng.Uniform(0.1, 0.5);
      const double sg_hi = sg_lo + rng.Uniform(0, 0.5);
      bounds[i] = MakeBounds(mu_lo, mu_hi, sg_lo, sg_hi);
      mu_v[i] = rng.Uniform(mu_lo, mu_hi);
      sg_v[i] = rng.Uniform(sg_lo, sg_hi);
      mu_q[i] = rng.Uniform(-3, 3);
      sg_q[i] = rng.Uniform(0.1, 1.0);
    }
    for (SigmaPolicy policy :
         {SigmaPolicy::kConvolution, SigmaPolicy::kAdditive}) {
      const double log_density = JointLogDensity(
          mu_v.data(), sg_v.data(), mu_q.data(), sg_q.data(), d, policy);
      const double log_upper = JointLogUpperHull(bounds.data(), mu_q.data(),
                                                 sg_q.data(), d, policy);
      const double log_lower = JointLogLowerHull(bounds.data(), mu_q.data(),
                                                 sg_q.data(), d, policy);
      EXPECT_GE(log_upper + 1e-9, log_density);
      EXPECT_LE(log_lower - 1e-9, log_density);
    }
  }
}

}  // namespace
}  // namespace gauss
