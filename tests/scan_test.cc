#include <cmath>

#include <gtest/gtest.h>

#include "common/random.h"
#include "math/gaussian.h"
#include "pfv/pfv_file.h"
#include "scan/seq_scan.h"
#include "storage/buffer_pool.h"
#include "storage/page_device.h"

namespace gauss {
namespace {

// A tiny hand-checkable database in 1-d.
class SeqScanHandTest : public ::testing::Test {
 protected:
  SeqScanHandTest() : device_(1024), pool_(&device_, 64), file_(&pool_, 1) {
    // Three objects around the query at 0: an aligned certain one, an
    // aligned uncertain one, and a distant one.
    file_.Append(Pfv(1, {0.0}, {0.1}));   // strong match
    file_.Append(Pfv(2, {0.0}, {1.0}));   // weak (spread-out) match
    file_.Append(Pfv(3, {10.0}, {0.1}));  // essentially excluded
  }

  InMemoryPageDevice device_;
  BufferPool pool_;
  PfvFile file_;
};

TEST_F(SeqScanHandTest, MliqRanksByJointDensity) {
  SeqScan scan(&file_);
  const Pfv q(0, {0.0}, {0.1});
  const MliqResult result = scan.QueryMliq(q, 3);
  ASSERT_EQ(result.items.size(), 3u);
  EXPECT_EQ(result.items[0].id, 1u);
  EXPECT_EQ(result.items[1].id, 2u);
  EXPECT_EQ(result.items[2].id, 3u);

  // Hand-computed probabilities: densities p1 = N(0;0,sqrt(0.02)),
  // p2 = N(0;0,sqrt(1.01)), p3 = N(10;0,sqrt(0.02)) ~ 0.
  const double p1 = GaussianPdf(0.0, 0.0, std::sqrt(0.1 * 0.1 + 0.1 * 0.1));
  const double p2 = GaussianPdf(0.0, 0.0, std::sqrt(1.0 * 1.0 + 0.1 * 0.1));
  const double total = p1 + p2;  // p3 underflows
  EXPECT_NEAR(result.items[0].probability, p1 / total, 1e-9);
  EXPECT_NEAR(result.items[1].probability, p2 / total, 1e-9);
  EXPECT_NEAR(result.items[2].probability, 0.0, 1e-12);
}

TEST_F(SeqScanHandTest, ProbabilitiesSumToOneOverFullDatabase) {
  SeqScan scan(&file_);
  const Pfv q(0, {0.2}, {0.3});
  const MliqResult result = scan.QueryMliq(q, 3);
  double total = 0.0;
  for (const auto& item : result.items) total += item.probability;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST_F(SeqScanHandTest, TiqFiltersByThreshold) {
  SeqScan scan(&file_);
  const Pfv q(0, {0.0}, {0.1});
  // With the densities above, P(1) ~ 0.875, P(2) ~ 0.125.
  const TiqResult at_50 = scan.QueryTiq(q, 0.5);
  ASSERT_EQ(at_50.items.size(), 1u);
  EXPECT_EQ(at_50.items[0].id, 1u);

  const TiqResult at_10 = scan.QueryTiq(q, 0.1);
  EXPECT_EQ(at_10.items.size(), 2u);

  const TiqResult at_95 = scan.QueryTiq(q, 0.95);
  EXPECT_TRUE(at_95.items.empty());
}

TEST_F(SeqScanHandTest, TiqResultsSortedDescending) {
  SeqScan scan(&file_);
  const Pfv q(0, {0.0}, {0.5});
  const TiqResult result = scan.QueryTiq(q, 0.01);
  for (size_t i = 1; i < result.items.size(); ++i) {
    EXPECT_GE(result.items[i - 1].probability, result.items[i].probability);
  }
}

TEST_F(SeqScanHandTest, KnnIgnoresUncertainty) {
  SeqScan scan(&file_);
  // Query mean at 0.4: object 1 and 2 share mean 0 (distance 0.4), object 3
  // is at 10. Euclidean NN cannot distinguish 1 from 2 — exactly the
  // limitation the paper's Figure 1 illustrates.
  const Pfv q(0, {0.4}, {0.1});
  const auto knn = scan.QueryKnnMeans(q, 2);
  ASSERT_EQ(knn.size(), 2u);
  EXPECT_TRUE((knn[0] == 1 && knn[1] == 2) || (knn[0] == 2 && knn[1] == 1));
}

TEST(SeqScanTest, TwoPassesChargeScanPagesTwice) {
  InMemoryPageDevice device(1024);
  BufferPool pool(&device, 4096);
  PfvFile file(&pool, 2);
  Rng rng(91);
  for (uint64_t i = 0; i < 500; ++i) {
    std::vector<double> mu = {rng.NextDouble(), rng.NextDouble()};
    std::vector<double> sigma = {0.05, 0.05};
    file.Append(Pfv(i, std::move(mu), std::move(sigma)));
  }
  SeqScan scan(&file);
  const Pfv q(0, {0.5, 0.5}, {0.05, 0.05});

  pool.Clear();
  pool.ResetStats();
  scan.QueryMliq(q, 5);
  EXPECT_EQ(pool.stats().logical_reads, file.page_count());  // single pass

  pool.Clear();
  pool.ResetStats();
  scan.QueryTiq(q, 0.2);
  EXPECT_EQ(pool.stats().logical_reads, 2 * file.page_count());  // two passes
}

TEST(SeqScanTest, EmptyFileReturnsNothing) {
  InMemoryPageDevice device(1024);
  BufferPool pool(&device, 16);
  PfvFile file(&pool, 2);
  SeqScan scan(&file);
  const Pfv q(0, {0.5, 0.5}, {0.05, 0.05});
  EXPECT_TRUE(scan.QueryMliq(q, 3).items.empty());
  EXPECT_TRUE(scan.QueryTiq(q, 0.1).items.empty());
  EXPECT_TRUE(scan.QueryKnnMeans(q, 3).empty());
}

TEST(SeqScanTest, MliqKLargerThanDatabase) {
  InMemoryPageDevice device(1024);
  BufferPool pool(&device, 16);
  PfvFile file(&pool, 1);
  file.Append(Pfv(1, {0.0}, {0.1}));
  file.Append(Pfv(2, {1.0}, {0.1}));
  SeqScan scan(&file);
  const Pfv q(0, {0.5}, {0.1});
  const MliqResult result = scan.QueryMliq(q, 10);
  EXPECT_EQ(result.items.size(), 2u);
}

TEST(SeqScanTest, FigureOneScenario) {
  // The paper's Figure 1 narrative: query with good rotation (F1 exact) but
  // bad illumination (F2 uncertain). O3 (bad rotation, good illumination)
  // must win over O1 (both good) because O3's F1 uncertainty absorbs the F1
  // gap while the query's F2 uncertainty absorbs O3's F2 gap — even though
  // O1 is the Euclidean nearest neighbour.
  InMemoryPageDevice device(1024);
  BufferPool pool(&device, 16);
  PfvFile file(&pool, 2);
  // (F1, F2) with per-feature sigmas. O1 is the Euclidean-nearest mean but
  // its small sigmas cannot absorb the F1 gap against the F1-exact query;
  // O3's large F1 sigma and the query's large F2 sigma absorb O3's gaps.
  file.Append(Pfv(1, {2.6, 1.6}, {0.15, 0.15}));   // O1: certain, off-center
  file.Append(Pfv(2, {1.2, 2.6}, {0.90, 0.90}));   // O2: both uncertain
  file.Append(Pfv(3, {1.8, 4.2}, {0.80, 0.15}));   // O3: F1 uncertain only
  SeqScan scan(&file);
  const Pfv q(0, {3.05, 3.05}, {0.12, 0.85});      // F1 exact, F2 uncertain

  const auto knn = scan.QueryKnnMeans(q, 1);
  const MliqResult mliq = scan.QueryMliq(q, 3);
  ASSERT_EQ(mliq.items.size(), 3u);
  EXPECT_EQ(knn[0], 1u);            // conventional similarity picks O1
  EXPECT_EQ(mliq.items[0].id, 3u);  // the probabilistic model picks O3
  EXPECT_GT(mliq.items[0].probability, mliq.items[1].probability);
  // The conventional method and the probabilistic method disagree:
  EXPECT_NE(knn[0], mliq.items[0].id);
}

}  // namespace
}  // namespace gauss
