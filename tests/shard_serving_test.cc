// Serving-layer tests for the sharded front door (ShardCoordinator + the
// GaussDb sharded Session): deterministic admission control (shed at a full
// coordinator queue, expiry while queued — counted once, never per shard),
// merged ServiceStats/IoStats totals, destructor drain with in-flight
// cross-shard scatter-gathers, and answer consistency under concurrent
// submitters. Runs under TSan (`cmake --workflow --preset tsan`) and
// ASan/UBSan (`--preset asan`).

#include <chrono>
#include <functional>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "api/gauss_db.h"
#include "api/partitioner.h"
#include "data/generators.h"
#include "data/workload.h"
#include "gausstree/gauss_tree.h"
#include "service/query.h"
#include "service/query_service.h"
#include "service/shard_coordinator.h"
#include "service_test_util.h"
#include "storage/buffer_pool.h"
#include "storage/page_device.h"
#include "storage/sharded_buffer_pool.h"

namespace gauss {
namespace {

using test::ExpectItemsBytesEqual;
using test::GatedPageCache;
using test::SpinUntil;

// Hand-wired two-shard stack: the gallery hash-partitioned over two trees on
// two devices, exactly what GaussDb does internally — but with the page
// caches exposed so tests can gate shard 0 and pin the coordinator in a
// known state.
class ShardServingTest : public ::testing::Test {
 protected:
  static constexpr size_t kDim = 4;
  static constexpr size_t kObjects = 1200;

  void SetUp() override {
    ClusteredDatasetConfig config;
    config.size = kObjects;
    config.dim = kDim;
    config.cluster_count = 10;
    config.seed = 77;
    dataset_ = GenerateClusteredDataset(config);

    const std::vector<PfvDataset> parts = Partitioner(2).Split(dataset_);
    for (size_t s = 0; s < 2; ++s) {
      BufferPool build_pool(&devices_[s], 1 << 14);
      GaussTree tree(&build_pool, kDim);
      tree.BulkLoad(parts[s]);
      tree.Finalize();
      metas_[s] = tree.meta_page();
    }

    WorkloadConfig wconfig;
    wconfig.query_count = 16;
    wconfig.seed = 5;
    workload_ = GenerateWorkload(dataset_, wconfig);
  }

  InMemoryPageDevice devices_[2];
  PageId metas_[2] = {kInvalidPageId, kInvalidPageId};
  PfvDataset dataset_{kDim};
  std::vector<IdentificationQuery> workload_;
};

// Admission control lives at the coordinator, not at the shards: with the
// single coordinator thread pinned inside an in-flight scatter (shard 0's
// worker gated) and the front-door queue full, a deadline query is shed; a
// queued deadline query whose budget lapses expires without traversal; and
// neither disturbs the queries that execute.
TEST_F(ShardServingTest, FrontDoorShedsAndExpiresDeterministically) {
  ShardedBufferPool pool0(&devices_[0], 1 << 12);
  ShardedBufferPool pool1(&devices_[1], 1 << 12);
  GatedPageCache gated(&pool0);
  auto tree0 = GaussTree::Open(&gated, metas_[0]);  // gate open: loads fine
  auto tree1 = GaussTree::Open(&pool1, metas_[1]);
  QueryService shard0(*tree0, {.num_workers = 1, .queue_capacity = 8});
  QueryService shard1(*tree1, {.num_workers = 1, .queue_capacity = 8});
  ShardCoordinator coordinator(std::vector<QueryService*>{&shard0, &shard1},
                               {.num_threads = 1, .queue_capacity = 2});

  gated.CloseGate();
  // f0 is popped by the coordinator thread, which scatters to both shards;
  // shard 1 answers, shard 0's worker blocks at the gate — so the
  // coordinator thread is pinned in gather.
  auto f0 = coordinator.Submit(Query::Mliq(workload_[0].query, 3));
  SpinUntil([&] { return gated.waiting() == 1; });

  // Front-door queue slot 1: a plain query. Slot 2: a deadline query whose
  // budget will expire while it waits.
  auto f1 = coordinator.Submit(Query::Mliq(workload_[1].query, 3));
  const auto f2_deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(150);
  auto f2 = coordinator.Submit(
      Query::Tiq(workload_[2].query, 0.2).Deadline(f2_deadline));

  // Queue now full: a deadline query cannot wait and is shed immediately.
  auto f3 = coordinator.Submit(
      Query::Mliq(workload_[3].query, 3).DeadlineAfter(std::chrono::hours(1)));
  ASSERT_EQ(f3.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  EXPECT_EQ(f3.get().status, QueryResponse::Status::kShed);

  // Dead on arrival completes synchronously without occupying a slot.
  auto f4 = coordinator.Submit(
      Query::Mliq(workload_[4].query, 3)
          .Deadline(std::chrono::steady_clock::now() -
                    std::chrono::milliseconds(1)));
  ASSERT_EQ(f4.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  EXPECT_EQ(f4.get().status, QueryResponse::Status::kDeadlineExceeded);

  EXPECT_NE(f0.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  EXPECT_NE(f1.wait_for(std::chrono::seconds(0)), std::future_status::ready);

  // Let f2's budget lapse, then release the gated shard worker.
  std::this_thread::sleep_until(f2_deadline + std::chrono::milliseconds(10));
  gated.OpenGate();

  const QueryResponse r0 = f0.get();
  const QueryResponse r1 = f1.get();
  const QueryResponse r2 = f2.get();
  EXPECT_EQ(r0.status, QueryResponse::Status::kOk);
  EXPECT_EQ(r1.status, QueryResponse::Status::kOk);
  EXPECT_EQ(r2.status, QueryResponse::Status::kDeadlineExceeded);
  EXPECT_TRUE(r2.items.empty());
  EXPECT_EQ(r2.stats.nodes_visited, 0u);  // expiry costs no traversal

  // The executed answers are unaffected by the admission churn around them:
  // a clean run of the same queries through the same coordinator is
  // byte-identical.
  const BatchResult clean = coordinator.ExecuteBatch(
      {Query::Mliq(workload_[0].query, 3), Query::Mliq(workload_[1].query, 3)});
  ExpectItemsBytesEqual(r0.items, clean.responses[0].items);
  ExpectItemsBytesEqual(r1.items, clean.responses[1].items);
}

// Destroying the coordinator with cross-shard queries in flight drains
// them: every future is ready — with a real answer — once the destructor
// returns, and only then may the shard services die.
TEST_F(ShardServingTest, DestructorDrainsInFlightCrossShardQueries) {
  ShardedBufferPool pool0(&devices_[0], 1 << 12);
  ShardedBufferPool pool1(&devices_[1], 1 << 12);
  GatedPageCache gated(&pool0);
  auto tree0 = GaussTree::Open(&gated, metas_[0]);
  auto tree1 = GaussTree::Open(&pool1, metas_[1]);
  QueryService shard0(*tree0, {.num_workers = 1, .queue_capacity = 8});
  QueryService shard1(*tree1, {.num_workers = 1, .queue_capacity = 8});
  auto coordinator = std::make_unique<ShardCoordinator>(
      std::vector<QueryService*>{&shard0, &shard1},
      ShardCoordinatorOptions{.num_threads = 1, .queue_capacity = 8});

  gated.CloseGate();
  auto f0 = coordinator->Submit(Query::Mliq(workload_[0].query, 3));
  SpinUntil([&] { return gated.waiting() == 1; });
  auto f1 = coordinator->Submit(Query::Tiq(workload_[1].query, 0.2));
  auto f2 = coordinator->Submit(Query::Mliq(workload_[2].query, 5));

  // All three genuinely outstanding at destruction time.
  EXPECT_NE(f0.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  EXPECT_NE(f1.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  EXPECT_NE(f2.wait_for(std::chrono::seconds(0)), std::future_status::ready);

  gated.OpenGate();
  coordinator.reset();  // closes the front door, drains, joins

  ASSERT_EQ(f0.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  ASSERT_EQ(f1.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  ASSERT_EQ(f2.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  EXPECT_EQ(f0.get().status, QueryResponse::Status::kOk);
  EXPECT_EQ(f1.get().status, QueryResponse::Status::kOk);
  EXPECT_EQ(f2.get().status, QueryResponse::Status::kOk);
}

// Merged ServiceStats must aggregate per-shard I/O and per-query latency
// without double-counting admission outcomes: a query expired at the front
// door is one expired query, not one per shard, and contributes no latency
// sample and no traversal work.
TEST_F(ShardServingTest, MergedStatsCountAdmissionOutcomesOnce) {
  ShardedBufferPool pool0(&devices_[0], 1 << 12);
  ShardedBufferPool pool1(&devices_[1], 1 << 12);
  auto tree0 = GaussTree::Open(&pool0, metas_[0]);
  auto tree1 = GaussTree::Open(&pool1, metas_[1]);
  QueryService shard0(*tree0, {.num_workers = 1, .queue_capacity = 8});
  QueryService shard1(*tree1, {.num_workers = 1, .queue_capacity = 8});
  ShardCoordinator coordinator(std::vector<QueryService*>{&shard0, &shard1},
                               {.num_threads = 2, .queue_capacity = 8});

  std::vector<Query> batch;
  batch.push_back(Query::Mliq(workload_[0].query, 3));
  batch.push_back(Query::Mliq(workload_[1].query, 3)
                      .Deadline(std::chrono::steady_clock::now() -
                                std::chrono::milliseconds(1)));
  batch.push_back(Query::Tiq(workload_[2].query, 0.2));

  IoStats pools_before = pool0.stats();
  pools_before += pool1.stats();
  const BatchResult result = coordinator.ExecuteBatch(batch);
  IoStats pools_after = pool0.stats();
  pools_after += pool1.stats();

  ASSERT_EQ(result.responses.size(), 3u);
  EXPECT_EQ(result.responses[0].status, QueryResponse::Status::kOk);
  EXPECT_EQ(result.responses[1].status,
            QueryResponse::Status::kDeadlineExceeded);
  EXPECT_EQ(result.responses[2].status, QueryResponse::Status::kOk);

  const ServiceStats& stats = result.stats;
  EXPECT_EQ(stats.total_queries(), 3u);
  EXPECT_EQ(stats.mliq_queries, 2u);
  EXPECT_EQ(stats.tiq_queries, 1u);
  EXPECT_EQ(stats.shed_queries, 0u);
  EXPECT_EQ(stats.deadline_exceeded_queries, 1u);  // once, not per shard
  EXPECT_EQ(stats.latency.count, 2u);  // only executed queries sample

  // Traversal totals are the sums over the executed responses (which are
  // themselves summed over both shards).
  EXPECT_EQ(stats.nodes_visited, result.responses[0].stats.nodes_visited +
                                     result.responses[2].stats.nodes_visited);
  EXPECT_GT(result.responses[0].stats.nodes_visited, 0u);
  EXPECT_EQ(result.responses[1].stats.nodes_visited, 0u);

  // The I/O delta is the sum over both shard caches — and both shards
  // really were touched.
  EXPECT_EQ(stats.io.logical_reads,
            pools_after.logical_reads - pools_before.logical_reads);
  EXPECT_GT(stats.io.logical_reads, 0u);
  EXPECT_GT(stats.pages_per_query(), 0.0);
  EXPECT_EQ(coordinator.io_stats().logical_reads, pools_after.logical_reads);
}

// AggregateBatchStats is the one counting rule both QueryService and
// ShardCoordinator batch paths share; pin its totals on a synthetic
// response set covering every admission outcome.
TEST(ShardStatsTest, AggregateBatchStatsPinsTotals) {
  std::vector<QueryResponse> responses(4);
  responses[0].kind = QueryKind::kMliq;
  responses[0].latency_ns = 1000;
  responses[0].stats.nodes_visited = 7;
  responses[1].kind = QueryKind::kTiq;
  responses[1].status = QueryResponse::Status::kShed;
  responses[1].stats.nodes_visited = 0;
  responses[2].kind = QueryKind::kMliq;
  responses[2].status = QueryResponse::Status::kDeadlineExceeded;
  responses[3].kind = QueryKind::kTiq;
  responses[3].latency_ns = 3000;
  responses[3].stats.nodes_visited = 5;

  IoStats io;
  io.logical_reads = 40;
  const ServiceStats stats = AggregateBatchStats(responses, /*wall=*/0.5, io);
  EXPECT_EQ(stats.total_queries(), 4u);
  EXPECT_EQ(stats.mliq_queries, 2u);
  EXPECT_EQ(stats.tiq_queries, 2u);
  EXPECT_EQ(stats.shed_queries, 1u);
  EXPECT_EQ(stats.deadline_exceeded_queries, 1u);
  EXPECT_EQ(stats.latency.count, 2u);  // shed/expired contribute no sample
  EXPECT_EQ(stats.nodes_visited, 12u);  // and no traversal work
  EXPECT_DOUBLE_EQ(stats.pages_per_query(), 10.0);
  EXPECT_DOUBLE_EQ(stats.qps, 8.0);
}

// Concurrent submitters through the GaussDb façade: many threads streaming
// queries into one sharded Session get byte-identical answers to a quiet
// batch run of the same queries — scatter-gather interleaving across
// coordinator threads and shard workers leaves no trace in the results.
// (This is the test TSan watches the coordinator under.)
TEST_F(ShardServingTest, ConcurrentSubmittersSeeConsistentAnswers) {
  GaussDbOptions options;
  options.shards.num_shards = 3;
  GaussDb db = GaussDb::CreateInMemory(kDim, options);
  db.Build(dataset_);
  Session session = db.Serve(
      {.num_workers = 3, .queue_capacity = 256, .coordinator_threads = 3});

  std::vector<Query> queries = test::MakeMixedBatch(workload_);
  const BatchResult reference = session.ExecuteBatch(queries);

  constexpr size_t kClients = 3;
  std::vector<std::vector<std::future<QueryResponse>>> futures(kClients);
  std::vector<std::thread> clients;
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (const Query& query : queries) {
        Query submitted = query;
        if (c == 1) {  // one client exercises the deadline path under load
          submitted.DeadlineAfter(std::chrono::hours(1));
        }
        futures[c].push_back(session.Submit(std::move(submitted)));
      }
    });
  }
  for (std::thread& t : clients) t.join();

  for (size_t c = 0; c < kClients; ++c) {
    for (size_t i = 0; i < queries.size(); ++i) {
      const QueryResponse resp = futures[c][i].get();
      ASSERT_EQ(resp.status, QueryResponse::Status::kOk);
      ExpectItemsBytesEqual(resp.items, reference.responses[i].items);
    }
  }
}

}  // namespace
}  // namespace gauss
