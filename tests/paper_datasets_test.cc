#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "data/paper_datasets.h"

namespace gauss {
namespace {

TEST(PaperDataset1Test, ShapeMatchesPaper) {
  const PaperDataset pd = GeneratePaperDataset1(2000);
  EXPECT_EQ(pd.dataset.size(), 2000u);
  EXPECT_EQ(pd.dataset.dim(), 27u);
  EXPECT_EQ(pd.sigma_base.size(), 27u);
  for (double b : pd.sigma_base) EXPECT_GT(b, 0.0);
}

TEST(PaperDataset1Test, MeansAreHistograms) {
  const PaperDataset pd = GeneratePaperDataset1(500);
  for (size_t i = 0; i < pd.dataset.size(); ++i) {
    double sum = 0.0;
    for (double v : pd.dataset[i].mu) {
      EXPECT_GE(v, 0.0);
      sum += v;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(PaperDataset1Test, SigmasFollowPerDimensionBase) {
  const PaperDataset pd = GeneratePaperDataset1(500);
  for (size_t i = 0; i < pd.dataset.size(); ++i) {
    for (size_t j = 0; j < 27; ++j) {
      const double ratio = pd.dataset[i].sigma[j] / pd.sigma_base[j];
      EXPECT_GE(ratio, 1.0 - pd.sigma_jitter - 1e-9);
      EXPECT_LE(ratio, 1.0 + pd.sigma_jitter + 1e-9);
    }
  }
}

TEST(PaperDataset2Test, ShapeMatchesPaper) {
  const PaperDataset pd = GeneratePaperDataset2(5000);
  EXPECT_EQ(pd.dataset.size(), 5000u);
  EXPECT_EQ(pd.dataset.dim(), 10u);
  EXPECT_EQ(pd.sigma_base.size(), 10u);
  // Queries vary in observation quality on data set 2.
  EXPECT_LT(pd.quality_lo, pd.quality_hi);
}

TEST(PaperDatasetTest, Deterministic) {
  const PaperDataset a = GeneratePaperDataset2(1000);
  const PaperDataset b = GeneratePaperDataset2(1000);
  EXPECT_EQ(a.sigma_base, b.sigma_base);
  for (size_t i = 0; i < a.dataset.size(); ++i) {
    EXPECT_EQ(a.dataset[i].mu, b.dataset[i].mu);
    EXPECT_EQ(a.dataset[i].sigma, b.dataset[i].sigma);
  }
}

TEST(PaperDatasetTest, SeedChangesData) {
  const PaperDataset a = GeneratePaperDataset2(100, /*seed=*/2);
  const PaperDataset b = GeneratePaperDataset2(100, /*seed=*/3);
  EXPECT_NE(a.dataset[0].mu, b.dataset[0].mu);
}

TEST(DrawQuerySigmasTest, QualityScalesSigmas) {
  const PaperDataset pd = GeneratePaperDataset2(100);
  Rng rng(5);
  const auto low = pd.DrawQuerySigmas(rng, 0.5);
  Rng rng2(5);
  const auto high = pd.DrawQuerySigmas(rng2, 2.5);
  for (size_t j = 0; j < low.size(); ++j) {
    EXPECT_NEAR(high[j] / low[j], 5.0, 1e-9);  // same jitter draw, 5x quality
  }
}

TEST(PaperWorkloadTest, ProtocolProperties) {
  const PaperDataset pd = GeneratePaperDataset2(5000);
  const auto workload = GeneratePaperWorkload(pd, 100);
  EXPECT_EQ(workload.size(), 100u);

  std::set<uint64_t> sources;
  for (const auto& iq : workload) {
    EXPECT_TRUE(iq.query.Valid());
    EXPECT_EQ(iq.query.dim(), 10u);
    sources.insert(iq.true_id);
    // Displacement follows the combined noise of the two observations:
    // bounded by ~6 combined sigmas per dimension with overwhelming
    // probability.
    const Pfv& source = pd.dataset[iq.true_id];
    for (size_t j = 0; j < 10; ++j) {
      const double combined =
          std::sqrt(source.sigma[j] * source.sigma[j] +
                    iq.query.sigma[j] * iq.query.sigma[j]);
      EXPECT_LT(std::fabs(iq.query.mu[j] - source.mu[j]), 6.0 * combined);
    }
  }
  EXPECT_EQ(sources.size(), 100u);  // sampled without replacement
}

TEST(PaperWorkloadTest, DeterministicPerSeed) {
  const PaperDataset pd = GeneratePaperDataset1(1000);
  const auto a = GeneratePaperWorkload(pd, 20, 7);
  const auto b = GeneratePaperWorkload(pd, 20, 7);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].true_id, b[i].true_id);
    EXPECT_EQ(a[i].query.mu, b[i].query.mu);
    EXPECT_EQ(a[i].query.sigma, b[i].query.sigma);
  }
}

TEST(PaperWorkloadTest, DifferentSeedsDiffer) {
  const PaperDataset pd = GeneratePaperDataset1(1000);
  const auto a = GeneratePaperWorkload(pd, 20, 7);
  const auto b = GeneratePaperWorkload(pd, 20, 8);
  bool any_difference = false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].true_id != b[i].true_id || a[i].query.mu != b[i].query.mu) {
      any_difference = true;
    }
  }
  EXPECT_TRUE(any_difference);
}

}  // namespace
}  // namespace gauss
