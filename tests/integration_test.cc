#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "data/generators.h"
#include "data/workload.h"
#include "eval/experiment.h"
#include "eval/metrics.h"
#include "gausstree/gauss_tree.h"
#include "gausstree/mliq.h"
#include "gausstree/tiq.h"
#include "pfv/pfv_file.h"
#include "scan/seq_scan.h"
#include "storage/buffer_pool.h"
#include "storage/page_device.h"
#include "xtree/xtree.h"
#include "xtree/xtree_queries.h"

namespace gauss {
namespace {

// End-to-end pipeline at reduced scale: generated dataset -> three methods
// (tree / scan / x-tree) -> workload -> effectiveness + cost accounting.
// These are scaled-down versions of the Figure 6 / Figure 7 benches that
// must pass as tests.
class IntegrationTest : public ::testing::Test {
 protected:
  static constexpr size_t kObjects = 4000;
  static constexpr size_t kQueries = 60;

  IntegrationTest()
      : device_(kDefaultPageSize),
        pool_(&device_, 1 << 16),
        tree_(&pool_, 10),
        file_(&pool_, 10),
        xtree_(&pool_, 10) {
    // The calibrated data-set-2 surrogate (clustered mixture) at test scale:
    // clustered data is what makes an R-tree-family index prune at all, and
    // the sigma regime is where Euclidean NN degrades while the
    // probabilistic model keeps identifying (paper Figures 6/7).
    ClusteredDatasetConfig config;
    config.size = kObjects;
    config.dim = 10;
    config.cluster_count = 20;
    dataset_ = GenerateClusteredDataset(config);
    sigma_model_ = config.sigma_model;

    file_.AppendAll(dataset_);
    tree_.BulkInsert(dataset_);
    tree_.Finalize();
    for (uint32_t i = 0; i < dataset_.size(); ++i) {
      xtree_.Insert(dataset_[i], i);
    }
    xtree_.Finalize();

    WorkloadConfig wc;
    wc.query_count = kQueries;
    wc.query_sigma_model = sigma_model_;
    workload_ = GenerateWorkload(dataset_, wc);
  }

  SigmaModel sigma_model_;

  InMemoryPageDevice device_;
  BufferPool pool_;
  GaussTree tree_;
  PfvFile file_;
  XTree xtree_;
  PfvDataset dataset_{10};
  std::vector<IdentificationQuery> workload_;
};

TEST_F(IntegrationTest, MliqIdentifiesAlmostAllQueries) {
  // Paper Figure 6(b): MLIQ precision/recall ~99% on the uniform dataset.
  SeqScan scan(&file_);
  size_t hits = 0;
  for (const auto& iq : workload_) {
    const MliqResult result = QueryMliq(tree_, iq.query, 1);
    ASSERT_EQ(result.items.size(), 1u);
    if (result.items[0].id == iq.true_id) ++hits;
  }
  EXPECT_GE(hits, kQueries * 90 / 100);
}

TEST_F(IntegrationTest, MliqBeatsEuclideanNN) {
  // The headline effectiveness claim: probability ranking beats Euclidean
  // distance on heteroscedastic data.
  SeqScan scan(&file_);
  size_t mliq_hits = 0, nn_hits = 0;
  for (const auto& iq : workload_) {
    const MliqResult mliq = QueryMliq(tree_, iq.query, 1);
    if (!mliq.items.empty() && mliq.items[0].id == iq.true_id) ++mliq_hits;
    const auto nn = scan.QueryKnnMeans(iq.query, 1);
    if (!nn.empty() && nn[0] == iq.true_id) ++nn_hits;
  }
  EXPECT_GT(mliq_hits, nn_hits);
}

TEST_F(IntegrationTest, TreeUsesFewerPagesThanScan) {
  // Paper Figure 7: the Gauss-tree accesses a fraction of the scan's pages.
  DiskModel disk;
  MliqOptions options;
  options.probability_accuracy = 1e-4;
  const MethodCosts tree_costs = RunMethod(
      "gauss-tree", &pool_, disk, workload_.size(),
      CachePolicy::kColdPerQuery, AccessPattern::kRandom, [&](size_t i) {
        return QueryMliq(tree_, workload_[i].query, 1, options).items.size();
      });
  const MethodCosts scan_costs = RunMethod(
      "seq-scan", &pool_, disk, workload_.size(), CachePolicy::kColdPerQuery,
      AccessPattern::kSequential, [&](size_t i) {
        SeqScan scan(&file_);
        return scan.QueryMliq(workload_[i].query, 1).items.size();
      });
  EXPECT_LT(tree_costs.mean.physical_pages, scan_costs.mean.physical_pages);
  EXPECT_LT(tree_costs.PagesPercentOf(scan_costs), 60.0);
}

TEST_F(IntegrationTest, TiqAgreementAcrossAllThreeMethods) {
  SeqScan scan(&file_);
  XTreeQueries xq(&xtree_, &file_);
  size_t xtree_total = 0, xtree_found = 0;
  for (const auto& iq : workload_) {
    const TiqResult tree_result = QueryTiq(tree_, iq.query, 0.2);
    const TiqResult scan_result = scan.QueryTiq(iq.query, 0.2);
    std::set<uint64_t> tree_ids, scan_ids;
    for (const auto& item : tree_result.items) tree_ids.insert(item.id);
    for (const auto& item : scan_result.items) scan_ids.insert(item.id);
    // Gauss-tree is exact.
    EXPECT_EQ(tree_ids, scan_ids);
    // X-tree may have false dismissals but must find most answers.
    const TiqResult x_result = xq.QueryTiq(iq.query, 0.2);
    xtree_total += scan_ids.size();
    for (const auto& item : x_result.items) {
      if (scan_ids.count(item.id) > 0) ++xtree_found;
    }
  }
  if (xtree_total > 0) {
    EXPECT_GE(static_cast<double>(xtree_found),
              0.85 * static_cast<double>(xtree_total));
  }
}

TEST_F(IntegrationTest, EffectivenessMetricsPipeline) {
  // Build ranked lists for scales 1..9 and verify the Figure 6 relationship
  // precision ~ recall / x for the NN method.
  SeqScan scan(&file_);
  std::vector<std::vector<uint64_t>> nn_lists;
  std::vector<uint64_t> truth;
  for (const auto& iq : workload_) {
    nn_lists.push_back(scan.QueryKnnMeans(iq.query, 9));
    truth.push_back(iq.true_id);
  }
  double previous_recall = -1.0;
  for (size_t x = 1; x <= 9; ++x) {
    const PrecisionRecall pr = EvaluateAtScale(nn_lists, truth, x);
    EXPECT_GE(pr.recall, previous_recall);  // recall monotone in x
    previous_recall = pr.recall;
  }
}

TEST_F(IntegrationTest, FilePersistenceRoundTrip) {
  // Build on a file-backed device, reopen, and query — full storage path.
  const std::string path = ::testing::TempDir() + "/gauss_integration.db";
  {
    FilePageDevice file_device(path, kDefaultPageSize, /*truncate=*/true);
    BufferPool file_pool(&file_device, 1 << 14);
    GaussTree disk_tree(&file_pool, 10);
    disk_tree.BulkInsert(dataset_);
    disk_tree.Finalize();
    file_pool.FlushAll();
    file_device.Sync();

    const MliqResult before = QueryMliq(disk_tree, workload_[0].query, 3);
    ASSERT_EQ(before.items.size(), 3u);
    EXPECT_EQ(before.items[0].id, workload_[0].true_id);
  }
  std::remove(path.c_str());
}

TEST_F(IntegrationTest, HistogramDatasetEndToEnd) {
  // Small-scale data set 1 surrogate through the full pipeline.
  HistogramDatasetConfig config;
  config.size = 2000;
  config.dim = 27;
  const PfvDataset histo = GenerateHistogramDataset(config);

  InMemoryPageDevice device(kDefaultPageSize);
  BufferPool pool(&device, 1 << 16);
  GaussTree tree(&pool, 27);
  PfvFile file(&pool, 27);
  tree.BulkInsert(histo);
  tree.Validate();
  tree.Finalize();
  file.AppendAll(histo);
  SeqScan scan(&file);

  WorkloadConfig wc;
  wc.query_count = 30;
  wc.query_sigma_model = config.sigma_model;
  wc.query_sigma_model.scale = ComputeMoments(histo).avg_stddev;
  const auto workload = GenerateWorkload(histo, wc);

  size_t hits = 0;
  for (const auto& iq : workload) {
    const MliqResult tree_result = QueryMliq(tree, iq.query, 1);
    const MliqResult scan_result = scan.QueryMliq(iq.query, 1);
    ASSERT_EQ(tree_result.items.size(), 1u);
    EXPECT_EQ(tree_result.items[0].id, scan_result.items[0].id);
    if (tree_result.items[0].id == iq.true_id) ++hits;
  }
  EXPECT_GE(hits, workload.size() * 8 / 10);
}

}  // namespace
}  // namespace gauss
