#include <cmath>
#include <set>
#include <string>
#include <tuple>

#include <gtest/gtest.h>

#include "common/random.h"
#include "gausstree/gauss_tree.h"
#include "gausstree/mliq.h"
#include "gausstree/tiq.h"
#include "pfv/pfv_file.h"
#include "scan/seq_scan.h"
#include "storage/buffer_pool.h"
#include "storage/page_device.h"

namespace gauss {
namespace {

Pfv RandomPfv(Rng& rng, uint64_t id, size_t dim, double sigma_lo,
              double sigma_hi) {
  std::vector<double> mu(dim), sigma(dim);
  for (double& m : mu) m = rng.Uniform(0, 1);
  for (double& s : sigma) s = rng.Uniform(sigma_lo, sigma_hi);
  return Pfv(id, std::move(mu), std::move(sigma));
}

// Parameterized equivalence sweep: (dim, objects, page_size, sigma policy,
// split strategy). For every configuration the Gauss-tree must return
// exactly the sequential scan's answers.
using Config = std::tuple<size_t, size_t, uint32_t, SigmaPolicy, SplitStrategy>;

class EquivalenceSweep : public ::testing::TestWithParam<Config> {};

TEST_P(EquivalenceSweep, TreeEqualsScan) {
  const auto [dim, objects, page_size, policy, strategy] = GetParam();
  InMemoryPageDevice device(page_size);
  BufferPool pool(&device, 1 << 16);
  GaussTreeOptions options;
  options.sigma_policy = policy;
  options.split_strategy = strategy;
  GaussTree tree(&pool, dim, options);
  PfvFile file(&pool, dim);

  Rng rng(1000 + dim * 31 + objects);
  PfvDataset dataset(dim);
  for (uint64_t i = 0; i < objects; ++i) {
    dataset.Add(RandomPfv(rng, i, dim, 0.01, 0.15));
  }
  tree.BulkInsert(dataset);
  tree.Validate();
  tree.Finalize();
  file.AppendAll(dataset);
  SeqScan scan(&file, policy);

  for (int trial = 0; trial < 8; ++trial) {
    const Pfv q = RandomPfv(rng, 90000 + trial, dim, 0.01, 0.15);

    const MliqResult tree_mliq = QueryMliq(tree, q, 3);
    const MliqResult scan_mliq = scan.QueryMliq(q, 3);
    ASSERT_EQ(tree_mliq.items.size(), scan_mliq.items.size());
    for (size_t i = 0; i < tree_mliq.items.size(); ++i) {
      EXPECT_NEAR(tree_mliq.items[i].log_density,
                  scan_mliq.items[i].log_density, 1e-9);
      EXPECT_NEAR(tree_mliq.items[i].probability,
                  scan_mliq.items[i].probability, 1e-5);
    }

    const TiqResult tree_tiq = QueryTiq(tree, q, 0.25);
    const TiqResult scan_tiq = scan.QueryTiq(q, 0.25);
    std::set<uint64_t> tree_ids, scan_ids;
    for (const auto& item : tree_tiq.items) tree_ids.insert(item.id);
    for (const auto& item : scan_tiq.items) scan_ids.insert(item.id);
    EXPECT_EQ(tree_ids, scan_ids);
  }
}

std::string ConfigName(const ::testing::TestParamInfo<Config>& info) {
  const size_t dim = std::get<0>(info.param);
  const size_t objects = std::get<1>(info.param);
  const uint32_t page_size = std::get<2>(info.param);
  const SigmaPolicy policy = std::get<3>(info.param);
  const SplitStrategy strategy = std::get<4>(info.param);
  std::string name = "d" + std::to_string(dim) + "_n" +
                     std::to_string(objects) + "_p" + std::to_string(page_size);
  name += policy == SigmaPolicy::kConvolution ? "_conv" : "_add";
  name += strategy == SplitStrategy::kHullIntegral ? "_hull"
          : strategy == SplitStrategy::kVolume     ? "_vol"
                                                   : "_mu";
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EquivalenceSweep,
    ::testing::Values(
        Config{1, 500, 1024, SigmaPolicy::kConvolution,
               SplitStrategy::kHullIntegral},
        Config{2, 800, 2048, SigmaPolicy::kConvolution,
               SplitStrategy::kHullIntegral},
        Config{3, 1200, 2048, SigmaPolicy::kAdditive,
               SplitStrategy::kHullIntegral},
        Config{5, 1500, 4096, SigmaPolicy::kConvolution,
               SplitStrategy::kVolume},
        Config{8, 1000, 8192, SigmaPolicy::kConvolution,
               SplitStrategy::kMuOnly},
        Config{10, 2000, 8192, SigmaPolicy::kConvolution,
               SplitStrategy::kHullIntegral},
        Config{4, 700, 1024, SigmaPolicy::kAdditive, SplitStrategy::kVolume}),
    ConfigName);

// Heteroscedastic stress: a mix of very certain and very uncertain objects —
// the regime where the Gauss-tree's sigma-aware structure matters most.
TEST(GaussTreePropertyTest, MixedCertaintyEquivalence) {
  InMemoryPageDevice device(4096);
  BufferPool pool(&device, 1 << 16);
  GaussTree tree(&pool, 3);
  PfvFile file(&pool, 3);
  Rng rng(71);
  PfvDataset dataset(3);
  for (uint64_t i = 0; i < 2000; ++i) {
    const bool certain = rng.NextDouble() < 0.5;
    dataset.Add(RandomPfv(rng, i, 3, certain ? 0.001 : 0.2,
                          certain ? 0.01 : 0.8));
  }
  tree.BulkInsert(dataset);
  tree.Finalize();
  file.AppendAll(dataset);
  SeqScan scan(&file);

  for (int trial = 0; trial < 16; ++trial) {
    const Pfv q = RandomPfv(rng, 80000 + trial, 3, 0.001, 0.5);
    const MliqResult a = QueryMliq(tree, q, 5);
    const MliqResult b = scan.QueryMliq(q, 5);
    ASSERT_EQ(a.items.size(), b.items.size());
    for (size_t i = 0; i < a.items.size(); ++i) {
      EXPECT_NEAR(a.items[i].log_density, b.items[i].log_density, 1e-9);
    }
  }
}

// Clustered data (many near-duplicates) still must be exact.
TEST(GaussTreePropertyTest, ClusteredDataEquivalence) {
  InMemoryPageDevice device(4096);
  BufferPool pool(&device, 1 << 16);
  GaussTree tree(&pool, 2);
  PfvFile file(&pool, 2);
  Rng rng(72);
  PfvDataset dataset(2);
  const int clusters = 10;
  for (uint64_t i = 0; i < 2000; ++i) {
    const int c = static_cast<int>(rng.UniformInt(clusters));
    std::vector<double> mu = {0.1 * c + rng.Gaussian(0, 0.005),
                              0.1 * c + rng.Gaussian(0, 0.005)};
    std::vector<double> sigma = {rng.Uniform(0.001, 0.05),
                                 rng.Uniform(0.001, 0.05)};
    dataset.Add(Pfv(i, std::move(mu), std::move(sigma)));
  }
  tree.BulkInsert(dataset);
  tree.Validate();
  tree.Finalize();
  file.AppendAll(dataset);
  SeqScan scan(&file);

  for (int trial = 0; trial < 16; ++trial) {
    const int c = static_cast<int>(rng.UniformInt(clusters));
    const Pfv q(90000 + trial,
                {0.1 * c + rng.Gaussian(0, 0.02), 0.1 * c + rng.Gaussian(0, 0.02)},
                {rng.Uniform(0.005, 0.05), rng.Uniform(0.005, 0.05)});
    const TiqResult a = QueryTiq(tree, q, 0.1);
    const TiqResult b = scan.QueryTiq(q, 0.1);
    std::set<uint64_t> ids_a, ids_b;
    for (const auto& item : a.items) ids_a.insert(item.id);
    for (const auto& item : b.items) ids_b.insert(item.id);
    EXPECT_EQ(ids_a, ids_b);
  }
}

// Insertion-order independence of *results* (structure may differ).
TEST(GaussTreePropertyTest, InsertionOrderDoesNotAffectAnswers) {
  Rng rng(73);
  PfvDataset dataset(2);
  for (uint64_t i = 0; i < 1000; ++i) {
    dataset.Add(RandomPfv(rng, i, 2, 0.01, 0.2));
  }
  const Pfv q = RandomPfv(rng, 99999, 2, 0.01, 0.2);

  auto run = [&](bool reversed) {
    InMemoryPageDevice device(2048);
    BufferPool pool(&device, 1 << 14);
    GaussTree tree(&pool, 2);
    if (reversed) {
      for (size_t i = dataset.size(); i-- > 0;) tree.Insert(dataset[i]);
    } else {
      for (size_t i = 0; i < dataset.size(); ++i) tree.Insert(dataset[i]);
    }
    tree.Finalize();
    return QueryMliq(tree, q, 5);
  };

  const MliqResult forward = run(false);
  const MliqResult backward = run(true);
  ASSERT_EQ(forward.items.size(), backward.items.size());
  for (size_t i = 0; i < forward.items.size(); ++i) {
    EXPECT_EQ(forward.items[i].id, backward.items[i].id);
    EXPECT_NEAR(forward.items[i].probability, backward.items[i].probability,
                1e-6);
  }
}

// Denominator-bound sanity: the certified interval always brackets the true
// scan denominator-derived probability.
TEST(GaussTreePropertyTest, ProbabilityIntervalsBracketTruth) {
  InMemoryPageDevice device(2048);
  BufferPool pool(&device, 1 << 14);
  GaussTree tree(&pool, 2);
  PfvFile file(&pool, 2);
  Rng rng(74);
  PfvDataset dataset(2);
  for (uint64_t i = 0; i < 1500; ++i) {
    dataset.Add(RandomPfv(rng, i, 2, 0.01, 0.3));
  }
  tree.BulkInsert(dataset);
  tree.Finalize();
  file.AppendAll(dataset);
  SeqScan scan(&file);

  MliqOptions coarse;
  coarse.probability_accuracy = 1e-2;  // deliberately loose
  for (int trial = 0; trial < 16; ++trial) {
    const Pfv q = RandomPfv(rng, 50000 + trial, 2, 0.01, 0.3);
    const MliqResult tree_result = QueryMliq(tree, q, 3, coarse);
    const MliqResult scan_result = scan.QueryMliq(q, 3);
    for (size_t i = 0; i < tree_result.items.size(); ++i) {
      const auto& item = tree_result.items[i];
      const double truth = scan_result.items[i].probability;
      EXPECT_LE(item.probability - item.probability_error, truth + 1e-9);
      EXPECT_GE(item.probability + item.probability_error, truth - 1e-9);
    }
  }
}

}  // namespace
}  // namespace gauss
