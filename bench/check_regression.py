#!/usr/bin/env python3
"""CI bench-regression guard for the serving benches.

The serving benches (sweep_concurrency, sweep_shards) append one JSON line
per measurement cell to $GAUSS_BENCH_JSON — QPS, p99 latency, logical
pages/query, and prefetch hit rate. This script compares such a file against
the committed baseline (bench/BENCH_serving.baseline.json) and fails (exit 1)
when any cell regresses:

  * pages_per_query  — lower is better; deterministic (logical page accesses
                       of fixed traversals over a fixed seeded dataset), so
                       any growth is a real algorithmic regression.
  * p99_us           — lower is better; timing, so noise handling matters:
                       repeated runs append to the same file and the MINIMUM
                       p99 per cell is compared (the best observation is the
                       least scheduler-polluted one — run the smokes twice
                       in CI). Tune --tolerance-p99 for noisy shared runners
                       rather than deleting the gate.
  * ns_per_entry     — lower is better; per-entry cost of the batch scoring
                       kernels (micro_kernels smoke cells). A timing metric
                       like p99_us: min-collapsed across appended runs and
                       governed by the same --skip-p99 / --tolerance-p99
                       switches, so the kernel-level gate rides the existing
                       runner-local timing baseline in CI.

Cells are keyed by (bench, scale, cell); re-runs append — the last line per
key wins for deterministic metrics, the minimum for the timing metrics
(p99_us, ns_per_entry). A baseline cell missing from the current run fails
too — silently losing bench coverage is itself a regression. Current-run
cells absent from the baseline are reported as candidates for re-baselining
but do not fail.

Regenerate the baseline (from the repo root, after a ci-preset build):

  rm -f build/BENCH_serving.json
  ctest --test-dir build -R '_smoke$'
  cp build/BENCH_serving.json bench/BENCH_serving.baseline.json
"""

import argparse
import json
import sys


# Metrics that measure wall time: min-collapsed across appended runs (the
# best observation is the least scheduler-polluted one) and gated together
# under --skip-p99 / --tolerance-p99.
TIMING_METRICS = ("p99_us", "ns_per_entry")


def load_cells(path):
    """Parses a JSON-lines bench file into {(bench, scale, cell): record}.

    Duplicate keys (the file is append-mode across runs): deterministic
    metrics keep the last occurrence, timing metrics keep the minimum
    observed.
    """
    cells = {}
    with open(path, "r", encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as e:
                raise SystemExit(f"{path}:{lineno}: bad JSON line: {e}")
            key = (record["bench"], record["scale"], record["cell"])
            if key in cells:
                for metric in TIMING_METRICS:
                    observed = [v for v in (record.get(metric),
                                            cells[key].get(metric))
                                if v is not None]
                    if observed:
                        record[metric] = min(observed)
            cells[key] = record
    return cells


def main(argv=None):
    """Runs the guard; `argv` defaults to sys.argv[1:] (injectable for the
    unit tests in bench/test_check_regression.py). Returns the process exit
    code: 0 = no regression, 1 = at least one gate failed."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--current", required=True,
                        help="BENCH_serving.json emitted by this run")
    parser.add_argument("--baseline", required=True,
                        help="committed baseline (bench/BENCH_serving.baseline.json)")
    parser.add_argument("--tolerance-pages", type=float, default=0.15,
                        help="allowed relative pages_per_query growth (default 0.15)")
    parser.add_argument("--tolerance-p99", type=float, default=0.15,
                        help="allowed relative p99 growth (default 0.15)")
    parser.add_argument("--skip-p99", action="store_true",
                        help="gate only pages_per_query (machine-invariant); "
                             "skips every timing metric (p99_us, "
                             "ns_per_entry) — use when the baseline was "
                             "recorded on different hardware, where absolute "
                             "timings don't transfer")
    parser.add_argument("--skip-pages", action="store_true",
                        help="gate only the timing metrics (for a "
                             "runner-local timing baseline)")
    args = parser.parse_args(argv)

    current = load_cells(args.current)
    baseline = load_cells(args.baseline)
    if not baseline:
        raise SystemExit(f"{args.baseline}: no baseline cells")

    checks = []
    if not args.skip_pages:
        checks.append(("pages_per_query", args.tolerance_pages))
    if not args.skip_p99:
        for metric in TIMING_METRICS:
            checks.append((metric, args.tolerance_p99))
    if not checks:
        raise SystemExit("--skip-pages and --skip-p99 together gate nothing")
    failures = []
    rows = []
    for key in sorted(baseline):
        base = baseline[key]
        cur = current.get(key)
        name = f"{key[0]}[scale={key[1]}] {key[2]}"
        if cur is None:
            failures.append(f"{name}: cell missing from current run "
                            f"(bench coverage lost?)")
            continue
        for metric, tolerance in checks:
            b, c = base.get(metric, 0.0), cur.get(metric, 0.0)
            if b <= 0.0:
                continue  # nothing meaningful to compare against
            ratio = c / b
            verdict = "ok"
            if ratio > 1.0 + tolerance:
                verdict = "REGRESSION"
                failures.append(
                    f"{name}: {metric} {c:.4g} vs baseline {b:.4g} "
                    f"(+{(ratio - 1) * 100:.1f}% > {tolerance * 100:.0f}%)")
            rows.append(f"  {verdict:>10}  {name:<55} {metric:>15} "
                        f"{c:>10.4g} / {b:<10.4g} ({(ratio - 1) * 100:+.1f}%)")

    print(f"bench-regression guard: {len(baseline)} baseline cells, "
          f"{len(current)} current cells")
    for row in rows:
        print(row)
    for key in sorted(set(current) - set(baseline)):
        print(f"  note: new cell not in baseline (re-baseline to track): "
              f"{key[0]}[scale={key[1]}] {key[2]}")

    if failures:
        print(f"\nFAIL: {len(failures)} regression(s):", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print("\nOK: no regressions beyond tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
