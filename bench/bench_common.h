#ifndef GAUSS_BENCH_BENCH_COMMON_H_
#define GAUSS_BENCH_BENCH_COMMON_H_

// Shared setup for the figure-reproduction benches: builds the three
// competing access methods (Gauss-tree, X-tree on rectangular
// approximations, sequential file) over a paper dataset, all sharing one
// buffer pool so page accounting is uniform.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "data/paper_datasets.h"
#include "eval/experiment.h"
#include "eval/report.h"
#include "gausstree/gauss_tree.h"
#include "gausstree/mliq.h"
#include "gausstree/tiq.h"
#include "pfv/pfv_file.h"
#include "scan/seq_scan.h"
#include "storage/buffer_pool.h"
#include "storage/page_device.h"
#include "xtree/xtree.h"
#include "xtree/xtree_queries.h"

namespace gauss::bench {

// A fully materialized evaluation environment for one dataset.
struct Environment {
  std::unique_ptr<InMemoryPageDevice> device;
  std::unique_ptr<BufferPool> pool;
  std::unique_ptr<GaussTree> tree;
  std::unique_ptr<PfvFile> file;
  std::unique_ptr<XTree> xtree;
  std::unique_ptr<SeqScan> scan;
  std::unique_ptr<XTreeQueries> xtree_queries;
  PaperDataset data;
  std::vector<IdentificationQuery> workload;
};

// Builds everything for a paper dataset. `which` is 1 or 2. Respects the
// GAUSS_BENCH_SCALE environment variable (a 0 < s <= 1 multiplier on the
// dataset size) so CI can smoke-test the benches quickly.
inline std::unique_ptr<Environment> BuildEnvironment(int which,
                                                     size_t query_count,
                                                     bool build_xtree = true) {
  double scale = 1.0;
  if (const char* env = std::getenv("GAUSS_BENCH_SCALE")) {
    scale = std::atof(env);
    if (scale <= 0.0 || scale > 1.0) scale = 1.0;
  }
  auto env = std::make_unique<Environment>();
  if (which == 1) {
    env->data = GeneratePaperDataset1(
        static_cast<size_t>(10987 * scale));
  } else {
    env->data = GeneratePaperDataset2(
        static_cast<size_t>(100000 * scale));
  }
  const size_t dim = env->data.dataset.dim();
  env->device = std::make_unique<InMemoryPageDevice>(kDefaultPageSize);
  // 50 MB of cache, matching the paper's configuration; it is cold-started
  // by the experiment runner.
  env->pool = std::make_unique<BufferPool>(
      env->device.get(), 50 * 1024 * 1024 / kDefaultPageSize);
  env->tree = std::make_unique<GaussTree>(env->pool.get(), dim);
  env->file = std::make_unique<PfvFile>(env->pool.get(), dim);
  env->tree->BulkInsert(env->data.dataset);
  env->tree->Finalize();
  env->file->AppendAll(env->data.dataset);
  env->scan = std::make_unique<SeqScan>(env->file.get());
  if (build_xtree) {
    env->xtree = std::make_unique<XTree>(env->pool.get(), dim);
    for (uint32_t i = 0; i < env->data.dataset.size(); ++i) {
      env->xtree->Insert(env->data.dataset[i], i);
    }
    env->xtree->Finalize();
    env->xtree_queries =
        std::make_unique<XTreeQueries>(env->xtree.get(), env->file.get());
  }
  env->workload = GeneratePaperWorkload(env->data, query_count);
  return env;
}

// Disk model used by every figure bench. The raw 2006-era positioning cost
// (~8 ms) applies to worst-case seeks; index pages are allocated in creation
// order and a best-first traversal revisits neighbouring subtrees, so the
// *effective* positioning cost per random index page (short seeks + OS
// readahead + controller caching) is far smaller. 0.1 ms reproduces the
// paper's reported relation between the page-access chart and the
// overall-time chart on both datasets (see EXPERIMENTS.md, E4/E5).
inline DiskModel BenchDiskModel() {
  DiskModel disk;
  disk.positioning_seconds = 0.0001;
  disk.transfer_mb_per_second = 60.0;
  disk.page_size_bytes = kDefaultPageSize;
  return disk;
}

}  // namespace gauss::bench

#endif  // GAUSS_BENCH_BENCH_COMMON_H_
