// Sharded-GaussDb scaling sweep: shard count x worker threads -> QPS,
// p50/p99 latency, logical pages per query. One gallery is built once per
// shard count (partitioning is part of the database, not the session) and
// served through a scatter-gather Session; every cell runs the same mixed
// MLIQ/TIQ workload on a warm cache, and every cell's answers are checked
// against the unsharded single-tree reference — ids and ordering exactly,
// probabilities within the certified error bounds — so the throughput
// numbers can't come from computing something different.
//
// Expectations: pages/query rises with the shard count (every shard's tree
// must be consulted — the Bayes denominator spans the whole gallery — and
// K trees of n/K objects have more upper levels between them than one tree
// of n), while QPS scales with workers once the machine has cores to give;
// on a 1-core container all worker columns collapse to single-thread
// throughput. The interesting sharded win is capacity (a gallery larger
// than one device) — the sweep quantifies what that costs per query.
//
// --devices=dir switches the sharded databases onto the multi-device
// directory layout (GaussDb::CreateOnDirectory under $TMPDIR): one
// FilePageDevice per shard behind the same scatter-gather front door. Every
// cell's answers are then additionally cross-checked BYTE-identically
// against the single-file sharded layout of the same shard count — same
// partitioner, same shard trees, so any divergence is a storage-layer bug —
// before the usual tolerance check against the in-memory single-tree
// reference. Cold-start columns show N independent files being read in
// parallel through their own async engines.
//
// --backend=rpc serves every cell through the distributed transport
// (src/net/): each shard's QueryService is exported by a loopback
// ShardServer and the measured session is a GaussDb::ServeRemote() front
// door speaking the binary wire protocol — Start/Refine/Release frames and
// batched refinement rounds included. Every RPC cell is cross-checked
// BYTE-identically against the in-process coordinator over the very same
// shard services before the usual tolerance check, so the wire path cannot
// quietly compute something different. The QPS delta between
// sweep_shards and sweep_shards_rpc cells is the transport tax on a
// loopback network.
//
// GAUSS_BENCH_SCALE in (0,1] shrinks the dataset for quick runs; the ci
// smoke tests (sweep_shards_smoke, sweep_shards_dir_smoke and
// sweep_shards_rpc_smoke in CMakeLists.txt) run at 0.02 so the cross-checks
// can't rot. When GAUSS_BENCH_JSON names a file, every cell appends its
// metrics as a JSON line for bench/check_regression.py (the CI
// bench-regression guard).

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "api/gauss_db.h"
#include "data/generators.h"
#include "data/workload.h"
#include "eval/report.h"
#include "net/net_error.h"
#include "net/shard_server.h"

namespace gauss::bench {
namespace {

constexpr double kAccuracy = 1e-4;
constexpr double kThreshold = 0.2;

// ids + ordering exact; probabilities within the summed certified
// half-widths (the sharded and single-tree runs refine to the same
// requested accuracy but along different traversals).
bool SameAnswers(const BatchResult& a, const BatchResult& b) {
  if (a.responses.size() != b.responses.size()) return false;
  for (size_t i = 0; i < a.responses.size(); ++i) {
    const auto& x = a.responses[i].items;
    const auto& y = b.responses[i].items;
    if (x.size() != y.size()) return false;
    for (size_t j = 0; j < x.size(); ++j) {
      if (x[j].id != y[j].id) return false;
      const double tolerance =
          x[j].probability_error + y[j].probability_error + 1e-12;
      if (std::fabs(x[j].probability - y[j].probability) > tolerance) {
        return false;
      }
    }
  }
  return true;
}

// Byte-level comparison for two runs that share partitioning and tree
// shapes (single-file vs directory layout of the same sharded database):
// the storage layout must be invisible, down to the last bit.
bool BytesIdentical(const BatchResult& a, const BatchResult& b) {
  if (a.responses.size() != b.responses.size()) return false;
  for (size_t i = 0; i < a.responses.size(); ++i) {
    const auto& x = a.responses[i].items;
    const auto& y = b.responses[i].items;
    if (x.size() != y.size()) return false;
    for (size_t j = 0; j < x.size(); ++j) {
      if (x[j].id != y[j].id ||
          std::memcmp(&x[j].probability, &y[j].probability,
                      sizeof(double)) != 0 ||
          std::memcmp(&x[j].probability_error, &y[j].probability_error,
                      sizeof(double)) != 0) {
        return false;
      }
    }
  }
  return true;
}

// Scratch directory for the --devices=dir layouts; removed afterwards.
std::string MakeScratchDir() {
  const char* tmp = std::getenv("TMPDIR");
  std::string pattern =
      std::string(tmp != nullptr ? tmp : "/tmp") + "/sweep_shards_dir.XXXXXX";
  std::vector<char> buf(pattern.begin(), pattern.end());
  buf.push_back('\0');
  const char* dir = ::mkdtemp(buf.data());
  if (dir == nullptr) {
    std::cout << "ERROR: cannot create scratch directory " << pattern << "\n";
    std::exit(1);
  }
  return dir;
}

void RemoveDirectoryLayout(const std::string& dir, size_t num_shards) {
  for (size_t s = 0; s < num_shards; ++s) {
    char name[40];
    std::snprintf(name, sizeof(name), "shard-%04zu.gauss", s);
    std::remove((dir + "/" + name).c_str());
  }
  std::remove((dir + "/MANIFEST").c_str());
  ::rmdir(dir.c_str());
}

void Run(bool directory_devices, bool rpc_backend) {
  PrintBanner(std::cout,
              rpc_backend
                  ? "Sharded GaussDb sweep (loopback RPC shard backends, "
                    "scatter-gather MLIQ+TIQ, warm cache)"
              : directory_devices
                  ? "Sharded GaussDb sweep (multi-device directory layout, "
                    "scatter-gather MLIQ+TIQ, warm cache)"
                  : "Sharded GaussDb sweep (scatter-gather MLIQ+TIQ, warm "
                    "cache)");
  double scale = 1.0;
  if (const char* env = std::getenv("GAUSS_BENCH_SCALE")) {
    const double s = std::atof(env);
    if (s > 0.0 && s <= 1.0) scale = s;
  }

  ClusteredDatasetConfig config;
  config.size = static_cast<size_t>(60000 * scale);
  config.dim = 8;
  const PfvDataset dataset = GenerateClusteredDataset(config);

  WorkloadConfig wconfig;
  wconfig.query_count = 256;
  const auto workload = GenerateWorkload(dataset, wconfig);

  std::vector<Query> batch;
  batch.reserve(workload.size());
  for (size_t i = 0; i < workload.size(); ++i) {
    if (i % 4 == 3) {
      batch.push_back(Query::Tiq(workload[i].query, kThreshold)
                          .Accuracy(kAccuracy));
    } else {
      batch.push_back(Query::Mliq(workload[i].query, 3).Accuracy(kAccuracy));
    }
  }

  std::cout << "objects: " << dataset.size()
            << "  queries: " << batch.size()
            << "  hardware threads: " << std::thread::hardware_concurrency()
            << "\n\n";

  // Unsharded single-tree reference: the correctness anchor and the
  // 1-shard/1-worker throughput baseline.
  GaussDb reference_db = GaussDb::CreateInMemory(config.dim);
  reference_db.Build(dataset);
  ServeOptions ref_serve;
  ref_serve.num_workers = 1;
  ref_serve.cache_pages = 1 << 15;
  Session ref_session = reference_db.Serve(ref_serve);
  ref_session.ExecuteBatch(batch);  // warm
  const BatchResult reference = ref_session.ExecuteBatch(batch);

  Table table({"shards", "workers", "qps", "p50 us", "p99 us", "pages/query"});
  table.AddRow({"-", Table::Int(1), Table::Num(reference.stats.qps),
                Table::Num(reference.stats.latency.p50_us),
                Table::Num(reference.stats.latency.p99_us),
                Table::Num(reference.stats.pages_per_query())});

  const std::string bench_name = rpc_backend        ? "sweep_shards_rpc"
                                 : directory_devices ? "sweep_shards_dir"
                                                     : "sweep_shards";
  const auto emit_cell = [&](const std::string& cell, const ServiceStats& s) {
    BenchCellMetrics metrics;
    metrics.bench = bench_name;
    metrics.scale = scale;
    metrics.cell = cell;
    metrics.qps = s.qps;
    metrics.p99_us = s.latency.p99_us;
    metrics.pages_per_query = s.pages_per_query();
    if (s.io.prefetch_issued > 0) {
      metrics.prefetch_hit_rate = static_cast<double>(s.io.prefetch_hits) /
                                  static_cast<double>(s.io.prefetch_issued);
    }
    AppendBenchJson(metrics);
  };
  emit_cell("reference", reference.stats);

  // The directory layout needs >= 1 shard (one device per shard) and its
  // point is many devices: sweep the multi-file shard counts only.
  const std::vector<size_t> shard_counts =
      directory_devices ? std::vector<size_t>{4, 8}
                        : std::vector<size_t>{1, 2, 4, 8};
  const std::string scratch = directory_devices ? MakeScratchDir() : "";

  for (size_t shards : shard_counts) {
    GaussDbOptions options;
    options.shards.num_shards = shards;

    // Directory mode: the same gallery once per layout — the single-file
    // image is the byte-level cross-check reference (same partitioner, same
    // shard trees; only the pages' physical homes differ).
    const std::string dir_path =
        scratch + "/shards" + std::to_string(shards);
    const std::string file_path = dir_path + ".singlefile";
    GaussDb db = directory_devices
                     ? GaussDb::CreateOnDirectory(dir_path, config.dim, options)
                     : GaussDb::CreateInMemory(config.dim, options);
    db.Build(dataset);
    BatchResult single_file;
    if (directory_devices) {
      GaussDb file_db = GaussDb::CreateOnFile(file_path, config.dim, options);
      file_db.Build(dataset);
      Session session = file_db.Serve(
          {.num_workers = shards, .cache_pages = 1 << 15});
      session.ExecuteBatch(batch);  // warm
      single_file = session.ExecuteBatch(batch);
    }

    for (size_t workers : {1, 4}) {
      ServeOptions serve;
      serve.num_workers = shards * workers;
      serve.cache_pages = 1 << 15;  // sized for the tree: measure
                                    // scatter-gather, not cache misses
      serve.queue_capacity = batch.size();
      serve.coordinator_threads = 2;
      Session session = db.Serve(serve);

      session.ExecuteBatch(batch);  // warm the caches and the threads
      BatchResult result = session.ExecuteBatch(batch);

      // RPC mode: export each shard's QueryService through a loopback
      // ShardServer, dial them all from a ServeRemote() front door, and
      // measure the wire path. The in-process result just computed over the
      // same shard services is the byte-level cross-check. (Teardown order:
      // the remote session hangs up before its servers go away.)
      std::vector<std::unique_ptr<ShardServer>> servers;
      if (rpc_backend) {
        std::vector<std::string> endpoints;
        for (size_t s = 0; s < session.num_shards(); ++s) {
          NetError error;
          std::unique_ptr<ShardServer> server =
              ShardServer::Listen(session.shard_service(s), {}, &error);
          if (server == nullptr) {
            std::cout << "ERROR: ShardServer::Listen: " << error.ToString()
                      << "\n";
            std::exit(1);
          }
          endpoints.push_back("127.0.0.1:" +
                              std::to_string(server->port()));
          servers.push_back(std::move(server));
        }
        ServeResult connected = GaussDb::ServeRemote(endpoints);
        if (!connected.ok()) {
          std::cout << "ERROR: ServeRemote: " << connected.error().ToString()
                    << "\n";
          std::exit(1);
        }
        Session remote = std::move(connected).value();
        remote.ExecuteBatch(batch);  // warm the connections
        BatchResult rpc_result = remote.ExecuteBatch(batch);
        if (!BytesIdentical(rpc_result, result)) {
          std::cout << "ERROR: RPC answers are not byte-identical to the "
                       "in-process coordinator at "
                    << shards << " shards, " << workers << " workers/shard\n";
          std::exit(1);
        }
        result = std::move(rpc_result);
      }

      if (!SameAnswers(result, reference)) {
        std::cout << "ERROR: answers diverged at " << shards << " shards, "
                  << workers << " workers/shard\n";
        std::exit(1);
      }
      if (directory_devices && !BytesIdentical(result, single_file)) {
        std::cout << "ERROR: directory-layout answers are not byte-identical "
                     "to the single-file layout at "
                  << shards << " shards, " << workers << " workers/shard\n";
        std::exit(1);
      }

      const ServiceStats& stats = result.stats;
      table.AddRow({Table::Int(shards), Table::Int(shards * workers),
                    Table::Num(stats.qps), Table::Num(stats.latency.p50_us),
                    Table::Num(stats.latency.p99_us),
                    Table::Num(stats.pages_per_query())});
      emit_cell("shards=" + std::to_string(shards) +
                    ",workers=" + std::to_string(shards * workers),
                stats);
    }
    if (directory_devices) {
      RemoveDirectoryLayout(dir_path, shards);
      std::remove(file_path.c_str());
    }
  }
  if (directory_devices) ::rmdir(scratch.c_str());
  table.Print(std::cout);
  std::cout << "answers of every cell verified against the unsharded "
               "single-tree reference (ids exact, probabilities within "
               "certified bounds)\n";
  if (directory_devices) {
    std::cout << "every directory-layout cell additionally byte-identical to "
                 "the single-file sharded layout of the same shard count\n";
  }
  if (rpc_backend) {
    std::cout << "every RPC cell additionally byte-identical to the "
                 "in-process coordinator over the same shard services\n";
  }
}

}  // namespace
}  // namespace gauss::bench

int main(int argc, char** argv) {
  bool directory_devices = false;
  bool rpc_backend = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--devices=dir") == 0) {
      directory_devices = true;
    } else if (std::strcmp(argv[i], "--devices=single") == 0) {
      directory_devices = false;
    } else if (std::strcmp(argv[i], "--backend=rpc") == 0) {
      rpc_backend = true;
    } else if (std::strcmp(argv[i], "--backend=inprocess") == 0) {
      rpc_backend = false;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--devices=single|dir] [--backend=inprocess|rpc]\n",
                   argv[0]);
      return 1;
    }
  }
  if (directory_devices && rpc_backend) {
    std::fprintf(stderr,
                 "%s: --devices=dir and --backend=rpc are separate sweeps; "
                 "pick one\n",
                 argv[0]);
    return 1;
  }
  gauss::bench::Run(directory_devices, rpc_backend);
  return 0;
}
