"""Unit tests for the baseline regenerator (bench/update_baseline.py).

The regenerated baseline is what the CI guard gates every merge against, so
the updater's collapse/merge semantics are tested code too. Run with either

  python -m pytest bench/test_update_baseline.py         # CI
  python -m unittest bench.test_update_baseline          # stdlib-only
"""

import json
import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import check_regression
import update_baseline


def cell(name, pages=10.0, p99=100.0, bench="sweep_x", scale=1.0, **extra):
    record = {"bench": bench, "scale": scale, "cell": name,
              "pages_per_query": pages, "p99_us": p99}
    record.update(extra)
    return record


class UpdateBaselineTestCase(unittest.TestCase):
    def setUp(self):
        self._dir = tempfile.TemporaryDirectory()
        self.addCleanup(self._dir.cleanup)

    def write_jsonl(self, name, records):
        path = os.path.join(self._dir.name, name)
        with open(path, "w", encoding="utf-8") as f:
            for record in records:
                f.write(json.dumps(record) + "\n")
        return path

    def run_update(self, current, baseline=None, *extra_args):
        current_path = self.write_jsonl("current.json", current)
        baseline_path = (self.write_jsonl("baseline.json", baseline)
                         if baseline is not None
                         else os.path.join(self._dir.name, "baseline.json"))
        argv = ["--current", current_path, "--baseline", baseline_path]
        argv.extend(extra_args)
        rc = update_baseline.main(argv)
        return rc, baseline_path

    def read_cells(self, path):
        return check_regression.load_cells(path)


class CollapseTest(UpdateBaselineTestCase):
    def test_fresh_baseline_is_written_sorted(self):
        rc, path = self.run_update([cell("b"), cell("a")])
        self.assertEqual(rc, 0)
        with open(path, encoding="utf-8") as f:
            names = [json.loads(line)["cell"] for line in f]
        self.assertEqual(names, ["a", "b"])

    def test_minimum_p99_across_runs_is_recorded(self):
        # Two appended smoke runs: the baseline must keep the guard's view —
        # the minimum p99 — not the last line's value.
        rc, path = self.run_update(
            [cell("a", p99=1000.0), cell("a", p99=101.0, pages=12.0)])
        self.assertEqual(rc, 0)
        record = self.read_cells(path)[("sweep_x", 1.0, "a")]
        self.assertEqual(record["p99_us"], 101.0)
        self.assertEqual(record["pages_per_query"], 12.0)

    def test_deterministic_metrics_keep_last_occurrence(self):
        rc, path = self.run_update(
            [cell("a", pages=500.0), cell("a", pages=100.0)])
        self.assertEqual(rc, 0)
        record = self.read_cells(path)[("sweep_x", 1.0, "a")]
        self.assertEqual(record["pages_per_query"], 100.0)

    def test_guard_passes_against_freshly_written_baseline(self):
        # The round trip that matters: regenerate, then run the guard with
        # the same current file — zero regressions by construction.
        current = [cell("a", pages=33.3, p99=912.5), cell("b")]
        rc, path = self.run_update(current)
        self.assertEqual(rc, 0)
        current_path = self.write_jsonl("current2.json", current)
        self.assertEqual(check_regression.main(
            ["--current", current_path, "--baseline", path]), 0)


class MergeTest(UpdateBaselineTestCase):
    def test_stale_baseline_cells_are_kept_by_default(self):
        # A cell the current run never produced must survive — silently
        # dropping it would drop the guard's coverage check too.
        rc, path = self.run_update([cell("a", pages=1.0)],
                                   [cell("a", pages=9.0), cell("old")])
        self.assertEqual(rc, 0)
        cells = self.read_cells(path)
        self.assertIn(("sweep_x", 1.0, "old"), cells)
        self.assertEqual(cells[("sweep_x", 1.0, "a")]["pages_per_query"], 1.0)

    def test_prune_drops_stale_cells(self):
        rc, path = self.run_update([cell("a")], [cell("a"), cell("old")],
                                   "--prune")
        self.assertEqual(rc, 0)
        self.assertNotIn(("sweep_x", 1.0, "old"), self.read_cells(path))

    def test_cells_keyed_by_bench_scale_and_cell(self):
        # The same cell name at another scale is a different measurement —
        # it must neither overwrite nor be pruned implicitly.
        rc, path = self.run_update([cell("a", scale=0.02, pages=3.0)],
                                   [cell("a", scale=1.0, pages=30.0)])
        self.assertEqual(rc, 0)
        cells = self.read_cells(path)
        self.assertEqual(cells[("sweep_x", 0.02, "a")]["pages_per_query"], 3.0)
        self.assertEqual(cells[("sweep_x", 1.0, "a")]["pages_per_query"], 30.0)


class GuardRailsTest(UpdateBaselineTestCase):
    def test_empty_current_refuses_to_write(self):
        baseline = self.write_jsonl("baseline.json", [cell("a")])
        current = self.write_jsonl("current.json", [])
        with self.assertRaises(SystemExit):
            update_baseline.main(["--current", current,
                                  "--baseline", baseline])
        # The old baseline survives untouched.
        self.assertIn(("sweep_x", 1.0, "a"),
                      check_regression.load_cells(baseline))

    def test_malformed_current_line_is_an_error(self):
        baseline = os.path.join(self._dir.name, "baseline.json")
        current = os.path.join(self._dir.name, "broken.json")
        with open(current, "w", encoding="utf-8") as f:
            f.write('{"bench": "x", truncated\n')
        with self.assertRaises(SystemExit):
            update_baseline.main(["--current", current,
                                  "--baseline", baseline])
        self.assertFalse(os.path.exists(baseline))


if __name__ == "__main__":
    unittest.main()
