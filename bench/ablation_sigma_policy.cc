// Ablation A4 (DESIGN.md): the paper's Lemma 1 is written with a plain "+"
// on the deviation parameter (sigma_v + sigma_q); the statistically exact
// convolution of two Gaussians combines deviations as sqrt(sv^2 + sq^2).
// This bench quantifies how much the choice changes (a) identification
// accuracy and (b) query cost.

#include <cstdio>
#include <iostream>

#include "data/paper_datasets.h"
#include "eval/report.h"
#include "gausstree/gauss_tree.h"
#include "gausstree/mliq.h"
#include "gausstree/tiq.h"
#include "storage/buffer_pool.h"
#include "storage/page_device.h"

namespace gauss::bench {
namespace {

void Run(int which, size_t objects, size_t queries) {
  PrintBanner(std::cout, "Ablation A4: sigma combination policy, data set " +
                             std::to_string(which));
  double scale = 1.0;
  if (const char* env = std::getenv("GAUSS_BENCH_SCALE")) {
    const double s = std::atof(env);
    if (s > 0.0 && s <= 1.0) scale = s;
  }
  const PaperDataset data =
      which == 1
          ? GeneratePaperDataset1(static_cast<size_t>(objects * scale))
          : GeneratePaperDataset2(static_cast<size_t>(objects * scale));
  const auto workload = GeneratePaperWorkload(data, queries);

  Table table({"policy", "MLIQ hit rate", "avg P(true|q)", "MLIQ pages",
               "TIQ(0.2) results"});
  for (SigmaPolicy policy :
       {SigmaPolicy::kConvolution, SigmaPolicy::kAdditive}) {
    InMemoryPageDevice device(kDefaultPageSize);
    BufferPool pool(&device, 1 << 16);
    GaussTreeOptions options;
    options.sigma_policy = policy;
    GaussTree tree(&pool, data.dataset.dim(), options);
    tree.BulkInsert(data.dataset);
    tree.Finalize();

    MliqOptions mliq_options;
    mliq_options.probability_accuracy = 1e-2;
    TiqOptions tiq_options;
    tiq_options.exact_membership = false;
    size_t hits = 0;
    double prob_sum = 0.0;
    uint64_t pages = 0;
    size_t tiq_results = 0;
    for (const auto& iq : workload) {
      pool.Clear();
      pool.ResetStats();
      const MliqResult r = QueryMliq(tree, iq.query, 1, mliq_options);
      pages += pool.stats().physical_reads;
      if (!r.items.empty() && r.items[0].id == iq.true_id) {
        ++hits;
        prob_sum += r.items[0].probability;
      }
      tiq_results += QueryTiq(tree, iq.query, 0.2, tiq_options).items.size();
    }
    table.AddRow(
        {policy == SigmaPolicy::kConvolution ? "convolution (exact)"
                                             : "additive (paper literal)",
         Table::Pct(100.0 * static_cast<double>(hits) /
                    static_cast<double>(workload.size())),
         Table::Num(hits > 0 ? prob_sum / static_cast<double>(hits) : 0.0, 3),
         Table::Num(static_cast<double>(pages) /
                        static_cast<double>(workload.size())),
         Table::Num(static_cast<double>(tiq_results) /
                        static_cast<double>(workload.size()), 2)});
  }
  table.Print(std::cout);
  std::cout << "expectation: both policies identify nearly equally well "
               "(ranking is monotone-ish in the gap); the additive policy "
               "spreads densities, lowering reported probabilities\n";
}

}  // namespace
}  // namespace gauss::bench

int main() {
  gauss::bench::Run(1, 10987, 50);
  gauss::bench::Run(2, 50000, 50);
  return 0;
}
