// Ablation A6 (DESIGN.md): buffer-pool behaviour — cold-per-query (the
// paper's configuration) versus warm cache across a query batch, and the
// effect of shrinking the pool below the working set.

#include <cstdio>
#include <iostream>

#include "data/paper_datasets.h"
#include "eval/report.h"
#include "gausstree/gauss_tree.h"
#include "gausstree/mliq.h"
#include "pfv/pfv_file.h"
#include "storage/buffer_pool.h"
#include "storage/page_device.h"

namespace gauss::bench {
namespace {

void Run() {
  PrintBanner(std::cout, "Ablation A6: cache policy and pool size (1-MLIQ)");
  double scale = 1.0;
  if (const char* env = std::getenv("GAUSS_BENCH_SCALE")) {
    const double s = std::atof(env);
    if (s > 0.0 && s <= 1.0) scale = s;
  }
  const PaperDataset data =
      GeneratePaperDataset2(static_cast<size_t>(100000 * scale));
  const auto workload = GeneratePaperWorkload(data, 50);

  InMemoryPageDevice device(kDefaultPageSize);
  MliqOptions options;
  options.probability_accuracy = 1e-2;

  Table table({"pool size (pages)", "policy", "physical pages/query",
               "logical pages/query"});
  for (size_t pool_pages : {64, 256, 1024, 6400}) {
    for (bool cold_per_query : {true, false}) {
      BufferPool pool(&device, pool_pages);
      GaussTree tree(&pool, data.dataset.dim());
      tree.BulkInsert(data.dataset);
      tree.Finalize();

      pool.Clear();
      pool.ResetStats();
      uint64_t physical = 0, logical = 0;
      for (const auto& iq : workload) {
        if (cold_per_query) pool.Clear();
        const IoStats before = pool.stats();
        QueryMliq(tree, iq.query, 1, options);
        const IoStats delta = pool.stats() - before;
        physical += delta.physical_reads;
        logical += delta.logical_reads;
      }
      const double n = static_cast<double>(workload.size());
      table.AddRow({Table::Int(pool_pages),
                    cold_per_query ? "cold per query" : "warm batch",
                    Table::Num(physical / n), Table::Num(logical / n)});
    }
  }
  table.Print(std::cout);
  std::cout << "expectation: a warm pool absorbs the hot upper levels of the "
               "tree; once the pool holds the working set, physical reads "
               "collapse while logical reads are unchanged\n";
}

}  // namespace
}  // namespace gauss::bench

int main() {
  gauss::bench::Run();
  return 0;
}
