// Reproduces Figure 7 of the paper: page accesses, CPU time, and overall
// time of 1-MLIQ, TIQ(P=0.8), TIQ(P=0.2) for the Gauss-tree, the X-tree on
// rectangular pfv approximations, and the sequential scan, on both data
// sets. All values are reported in percent of the sequential scan, exactly
// like the paper's bar charts.
//
// Paper shape to reproduce:
//  * the Gauss-tree cuts page accesses and CPU time by roughly 4x on data
//    set 1 and 4-5x (MLIQ) to an order of magnitude or more (TIQ) on data
//    set 2;
//  * its overall-time win is smaller than its page-access win because index
//    traversal pays random positioning per page while the scan streams;
//  * the X-tree baseline offers no real benefit for the MLIQ and only a
//    modest overall-time win for the TIQ.

#include <cstdio>
#include <functional>
#include <iostream>

#include "bench_common.h"

namespace gauss::bench {
namespace {

struct QuerySpec {
  std::string name;
  // Runs the query against a method; returns result size.
  std::function<size_t(Environment&, const Pfv&)> gauss_tree;
  std::function<size_t(Environment&, const Pfv&)> xtree;
  std::function<size_t(Environment&, const Pfv&)> seq_scan;
};

std::vector<QuerySpec> MakeQuerySpecs() {
  // MLIQ refines result probabilities to two digits; TIQ uses the paper's
  // Figure 5 stopping rule (membership from conservative bounds).
  MliqOptions mliq_options;
  mliq_options.probability_accuracy = 1e-2;
  TiqOptions tiq_options;
  tiq_options.exact_membership = false;

  std::vector<QuerySpec> specs;
  specs.push_back(
      {"1-MLIQ",
       [mliq_options](Environment& env, const Pfv& q) {
         return QueryMliq(*env.tree, q, 1, mliq_options).items.size();
       },
       [](Environment& env, const Pfv& q) {
         return env.xtree_queries->QueryMliq(q, 1).items.size();
       },
       [](Environment& env, const Pfv& q) {
         return env.scan->QueryMliq(q, 1).items.size();
       }});
  for (double theta : {0.8, 0.2}) {
    specs.push_back(
        {"TIQ (P=" + Table::Num(theta, 1) + ")",
         [theta, tiq_options](Environment& env, const Pfv& q) {
           return QueryTiq(*env.tree, q, theta, tiq_options).items.size();
         },
         [theta](Environment& env, const Pfv& q) {
           return env.xtree_queries->QueryTiq(q, theta).items.size();
         },
         [theta](Environment& env, const Pfv& q) {
           return env.scan->QueryTiq(q, theta).items.size();
         }});
  }
  return specs;
}

void RunDataset(int which, size_t query_count) {
  PrintBanner(std::cout, "Figure 7: data set " + std::to_string(which));
  auto env = BuildEnvironment(which, query_count);
  std::printf("objects=%zu dim=%zu queries=%zu data-pages=%zu\n",
              env->data.dataset.size(), env->data.dataset.dim(),
              env->workload.size(), env->file->page_count());

  // Methodology mirroring the paper's setup: "page accesses" are buffer-pool
  // requests (logical reads — the cache-independent metric index papers of
  // the era chart); "overall time" adds the modeled physical I/O of a
  // per-query cold cache to the measured CPU time, with the effective disk
  // parameters documented in bench_common.h.
  const DiskModel disk = BenchDiskModel();
  Table pages({"query", "G-Tree", "X-Tree", "Seq. File"});
  Table cpu({"query", "G-Tree", "X-Tree", "Seq. File"});
  Table overall({"query", "G-Tree", "X-Tree", "Seq. File"});
  Table absolute({"query", "G-Tree pages", "X-Tree pages", "Seq pages",
                  "G-Tree ms", "Seq ms"});

  for (const QuerySpec& spec : MakeQuerySpecs()) {
    auto run = [&](const char* name, AccessPattern pattern,
                   const std::function<size_t(Environment&, const Pfv&)>& f) {
      return RunMethod(name, env->pool.get(), disk, env->workload.size(),
                       CachePolicy::kColdPerQuery, pattern,
                       [&](size_t i) {
                         return f(*env, env->workload[i].query);
                       });
    };
    const MethodCosts g = run("G-Tree", AccessPattern::kRandom,
                              spec.gauss_tree);
    const MethodCosts x = run("X-Tree", AccessPattern::kRandom, spec.xtree);
    const MethodCosts s = run("Seq. File", AccessPattern::kSequential,
                              spec.seq_scan);

    pages.AddRow({spec.name, Table::Pct(g.LogicalPagesPercentOf(s)),
                  Table::Pct(x.LogicalPagesPercentOf(s)), Table::Pct(100.0)});
    cpu.AddRow({spec.name, Table::Pct(g.CpuPercentOf(s)),
                Table::Pct(x.CpuPercentOf(s)), Table::Pct(100.0)});
    overall.AddRow({spec.name, Table::Pct(g.OverallPercentOf(s)),
                    Table::Pct(x.OverallPercentOf(s)), Table::Pct(100.0)});
    absolute.AddRow({spec.name, Table::Int(g.mean.logical_pages),
                     Table::Int(x.mean.logical_pages),
                     Table::Int(s.mean.logical_pages),
                     Table::Num(1e3 * g.mean.overall_seconds, 2),
                     Table::Num(1e3 * s.mean.overall_seconds, 2)});
  }

  std::cout << "\n(a) Page accesses (buffer requests), % of sequential scan\n";
  pages.Print(std::cout);
  std::cout << "\n(b) CPU time, % of sequential scan\n";
  cpu.Print(std::cout);
  std::cout << "\n(c) Overall time (CPU + modeled I/O), % of sequential scan\n";
  overall.Print(std::cout);
  std::cout << "\nAbsolute values (mean per query; pages are logical)\n";
  absolute.Print(std::cout);
}

}  // namespace
}  // namespace gauss::bench

int main() {
  // Paper: 100 queries for data set 1, 500 for data set 2; the query counts
  // can be reduced via GAUSS_BENCH_SCALE for smoke runs.
  gauss::bench::RunDataset(1, 100);
  gauss::bench::RunDataset(2, 100);
  return 0;
}
