// Ablation: bulk loading versus repeated insertion — build time, structure
// quality, and query cost on the paper's data set 2.

#include <cstdio>
#include <iostream>

#include "common/stopwatch.h"
#include "data/paper_datasets.h"
#include "eval/report.h"
#include "gausstree/gauss_tree.h"
#include "gausstree/mliq.h"
#include "gausstree/tiq.h"
#include "gausstree/tree_stats.h"
#include "storage/buffer_pool.h"
#include "storage/page_device.h"

namespace gauss::bench {
namespace {

void Run() {
  PrintBanner(std::cout, "Ablation: bulk load vs repeated insertion");
  double scale = 1.0;
  if (const char* env = std::getenv("GAUSS_BENCH_SCALE")) {
    const double s = std::atof(env);
    if (s > 0.0 && s <= 1.0) scale = s;
  }
  const PaperDataset data =
      GeneratePaperDataset2(static_cast<size_t>(100000 * scale));
  const auto workload = GeneratePaperWorkload(data, 50);

  Table table({"build", "build s", "nodes", "leaf fill", "leaf hull-int",
               "MLIQ pages", "TIQ(0.2) pages"});
  for (bool bulk : {false, true}) {
    InMemoryPageDevice device(kDefaultPageSize);
    BufferPool pool(&device, 1 << 16);
    GaussTree tree(&pool, data.dataset.dim());
    Stopwatch build;
    if (bulk) {
      tree.BulkLoad(data.dataset);
    } else {
      tree.BulkInsert(data.dataset);
    }
    const double build_seconds = build.ElapsedSeconds();
    tree.Finalize();

    const GaussTreeStats stats = tree.ComputeStats();
    const auto profile = ProfileLevels(tree);

    MliqOptions mliq_options;
    mliq_options.probability_accuracy = 1e-2;
    TiqOptions tiq_options;
    tiq_options.exact_membership = false;
    uint64_t mliq_pages = 0, tiq_pages = 0;
    for (const auto& iq : workload) {
      pool.Clear();
      pool.ResetStats();
      QueryMliq(tree, iq.query, 1, mliq_options);
      mliq_pages += pool.stats().physical_reads;
      pool.Clear();
      pool.ResetStats();
      QueryTiq(tree, iq.query, 0.2, tiq_options);
      tiq_pages += pool.stats().physical_reads;
    }
    const double n = static_cast<double>(workload.size());
    table.AddRow({bulk ? "BulkLoad (top-down)" : "repeated Insert",
                  Table::Num(build_seconds, 2), Table::Int(stats.node_count),
                  Table::Pct(100 * stats.avg_leaf_fill),
                  Table::Num(profile.back().avg_hull_integral, 3),
                  Table::Num(mliq_pages / n), Table::Num(tiq_pages / n)});
  }
  table.Print(std::cout);
  std::cout << "expectation: bulk loading yields far more selective nodes "
               "(orders of magnitude lower hull-integral measure), cutting "
               "query pages several-fold; the figure benches still build by "
               "insertion for fidelity to the paper's Section 5.3\n";
}

}  // namespace
}  // namespace gauss::bench

int main() {
  gauss::bench::Run();
  return 0;
}
