// GaussDb scaling sweep: worker threads x batch size -> QPS, p50/p99
// latency, logical pages per query. One database is built once and served
// through per-cell Sessions (each Serve() call builds an independent
// sharded-cache + worker-pool stack over the same finalized pages); every
// (threads, batch) cell runs the same MLIQ workload on a warm cache, and the
// answers of every cell are checked against the single-worker run, so the
// speedup numbers can't come from computing something different.
//
// Scaling expectation: queries are independent read-only traversals, so QPS
// grows with worker count until the machine runs out of cores (on a 1-core
// container all cells collapse to single-thread throughput — the sweep
// reports hardware_concurrency so the context is visible in the output).
//
// A second section reruns the workload against a *file-backed* copy of the
// database through a cache much smaller than the tree, sweeping the
// asynchronous read-ahead knob (ServeOptions::prefetch_depth): answers must
// stay identical to the reference and pages/query (logical reads) must not
// move — prefetching overlaps device reads with compute, it never changes
// what is read — while the prefetch-hit counters show the read-ahead doing
// real work. The bench exits non-zero if either invariant breaks.
//
// GAUSS_BENCH_SCALE in (0,1] shrinks the dataset for quick runs. When
// GAUSS_BENCH_JSON names a file, every cell appends its metrics as a JSON
// line for bench/check_regression.py (the CI bench-regression guard).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "api/gauss_db.h"
#include "data/generators.h"
#include "data/workload.h"
#include "eval/report.h"

namespace gauss::bench {
namespace {

// Compares the shared prefix: every batch is a prefix of the 512-query
// reference workload, so answer i must match answer i.
bool SameAnswers(const BatchResult& a, const BatchResult& b) {
  const size_t n = std::min(a.responses.size(), b.responses.size());
  for (size_t i = 0; i < n; ++i) {
    const auto& x = a.responses[i].items;
    const auto& y = b.responses[i].items;
    if (x.size() != y.size()) return false;
    for (size_t j = 0; j < x.size(); ++j) {
      if (x[j].id != y[j].id ||
          std::memcmp(&x[j].probability, &y[j].probability, sizeof(double)) !=
              0) {
        return false;
      }
    }
  }
  return true;
}

void Run() {
  PrintBanner(std::cout, "GaussDb concurrency sweep (3-MLIQ, warm cache)");
  double scale = 1.0;
  if (const char* env = std::getenv("GAUSS_BENCH_SCALE")) {
    const double s = std::atof(env);
    if (s > 0.0 && s <= 1.0) scale = s;
  }

  ClusteredDatasetConfig config;
  config.size = static_cast<size_t>(100000 * scale);
  config.dim = 10;
  const PfvDataset dataset = GenerateClusteredDataset(config);

  GaussDb db = GaussDb::CreateInMemory(config.dim);
  db.Build(dataset);

  WorkloadConfig wconfig;
  wconfig.query_count = 512;
  const auto workload = GenerateWorkload(dataset, wconfig);

  std::cout << "objects: " << dataset.size()
            << "  hardware threads: " << std::thread::hardware_concurrency()
            << "\n\n";

  Table table({"workers", "batch", "qps", "speedup", "p50 us", "p99 us",
               "pages/query"});
  double single_thread_qps = 0.0;

  auto make_batch = [&](size_t batch_size) {
    std::vector<Query> batch;
    batch.reserve(batch_size);
    for (size_t i = 0; i < batch_size; ++i) {
      batch.push_back(
          Query::Mliq(workload[i % workload.size()].query, /*k=*/3)
              .Accuracy(1e-2));
    }
    return batch;
  };

  // Reference answers from a dedicated single-worker run over the full
  // workload, captured before the sweep so *every* cell is checked against
  // it (smaller batches are prefixes, so answer i must match answer i).
  ServeOptions ref_serve;
  ref_serve.num_workers = 1;
  ref_serve.cache_pages = 1 << 15;
  const BatchResult reference =
      db.Serve(ref_serve).ExecuteBatch(make_batch(512));

  for (size_t workers : {1, 2, 4, 8, 16}) {
    for (size_t batch_size : {64, 512}) {
      const std::vector<Query> batch = make_batch(batch_size);

      // Serving pool sized for the whole tree: the sweep measures
      // concurrency scaling, not cache misses (sweep_cache covers those).
      ServeOptions serve;
      serve.num_workers = workers;
      serve.cache_pages = 1 << 15;
      serve.queue_capacity = batch_size;
      Session session = db.Serve(serve);

      session.ExecuteBatch(batch);  // warm the cache and the threads
      session.cache().ResetStats();
      BatchResult result = session.ExecuteBatch(batch);

      if (!SameAnswers(result, reference)) {
        std::cout << "ERROR: answers diverged at " << workers << " workers\n";
        std::exit(1);
      }

      const ServiceStats& stats = result.stats;
      if (workers == 1 && batch_size == 512) single_thread_qps = stats.qps;
      table.AddRow(
          {Table::Int(workers), Table::Int(batch_size), Table::Num(stats.qps),
           single_thread_qps > 0.0 && workers > 1
               ? Table::Num(stats.qps / single_thread_qps, 2) + "x"
               : "-",
           Table::Num(stats.latency.p50_us), Table::Num(stats.latency.p99_us),
           Table::Num(stats.pages_per_query())});

      BenchCellMetrics metrics;
      metrics.bench = "sweep_concurrency";
      metrics.scale = scale;
      metrics.cell = "workers=" + std::to_string(workers) +
                     ",batch=" + std::to_string(batch_size);
      metrics.qps = stats.qps;
      metrics.p99_us = stats.latency.p99_us;
      metrics.pages_per_query = stats.pages_per_query();
      AppendBenchJson(metrics);
    }
  }
  table.Print(std::cout);
  std::cout << "speedup is vs 1 worker / batch 512; answers of every cell "
               "verified identical to the single-worker run\n";

  // ---- File-backed prefetch section -------------------------------------
  // Same gallery persisted to disk, served through a cache far smaller than
  // the tree so traversals genuinely wait on the device; read-ahead depth 0
  // (synchronous baseline) vs 4. Pages/query must be depth-invariant: a
  // prefetch is a hint, never an access.
  PrintBanner(std::cout, "File-backed async prefetch (cache << tree, 3-MLIQ)");
  const std::string path = "sweep_concurrency_prefetch.db";
  GaussDb file_db = GaussDb::CreateOnFile(path, config.dim);
  file_db.Build(dataset);

  Table ptable({"prefetch", "qps", "p50 us", "p99 us", "pages/query",
                "prefetch hits", "hit rate"});
  double pages_at_depth0 = -1.0;
  for (const size_t depth : {size_t{0}, size_t{4}}) {
    ServeOptions serve;
    serve.num_workers = 2;
    serve.cache_pages = 128;  // far below the tree's page count
    serve.queue_capacity = 512;
    serve.prefetch_depth = depth;
    Session session = file_db.Serve(serve);

    const BatchResult result = session.ExecuteBatch(make_batch(512));
    if (!SameAnswers(result, reference)) {
      std::cout << "ERROR: file-backed answers diverged at prefetch depth "
                << depth << "\n";
      std::exit(1);
    }

    const ServiceStats& stats = result.stats;
    const double pages = stats.pages_per_query();
    if (depth == 0) {
      pages_at_depth0 = pages;
    } else if (pages != pages_at_depth0) {
      std::cout << "ERROR: pages/query moved under prefetch: " << pages
                << " vs " << pages_at_depth0 << "\n";
      std::exit(1);
    } else if (stats.io.prefetch_hits == 0) {
      std::cout << "ERROR: prefetch depth " << depth
                << " produced zero prefetch hits on the file-backed path\n";
      std::exit(1);
    }
    const double hit_rate =
        stats.io.prefetch_issued > 0
            ? static_cast<double>(stats.io.prefetch_hits) /
                  static_cast<double>(stats.io.prefetch_issued)
            : 0.0;
    ptable.AddRow({Table::Int(depth), Table::Num(stats.qps),
                   Table::Num(stats.latency.p50_us),
                   Table::Num(stats.latency.p99_us), Table::Num(pages),
                   Table::Int(stats.io.prefetch_hits),
                   Table::Pct(100 * hit_rate)});

    BenchCellMetrics metrics;
    metrics.bench = "sweep_concurrency";
    metrics.scale = scale;
    metrics.cell = "file,prefetch=" + std::to_string(depth);
    metrics.qps = stats.qps;
    metrics.p99_us = stats.latency.p99_us;
    metrics.pages_per_query = pages;
    metrics.prefetch_hit_rate = hit_rate;
    AppendBenchJson(metrics);
  }
  ptable.Print(std::cout);
  std::cout << "answers identical to the in-memory reference at every depth; "
               "pages/query depth-invariant (prefetch hints are not "
               "accesses)\n";
  std::remove(path.c_str());

  // ---- Mixed insert + query (live ingest) -------------------------------
  // The same gallery served with GaussDbOptions::ingest: one thread enrolls
  // a stream of new objects at full speed (kDeltaFull backpressure retried)
  // while a query thread keeps running the MLIQ workload — with background
  // merges rebuilding the base mid-stream. Reports enrollment throughput
  // and the query-side p99 under concurrent enrollment; exits non-zero if
  // an insert or query fails typed, or the final object count is off.
  PrintBanner(std::cout, "Live ingest: enroll while serving (3-MLIQ traffic)");
  GaussDbOptions live_options;
  live_options.ingest.enabled = true;
  live_options.ingest.delta_capacity = 1 << 14;
  live_options.ingest.merge_threshold = 1 << 12;
  GaussDb live_db = GaussDb::CreateInMemory(config.dim, live_options);
  live_db.Build(dataset);
  ServeOptions live_serve;
  live_serve.num_workers = 4;
  live_serve.cache_pages = 1 << 15;
  live_serve.queue_capacity = 512;
  Session live = live_db.Serve(live_serve);

  const size_t enroll_count = std::max<size_t>(512, dataset.size() / 10);
  ClusteredDatasetConfig extra_config = config;
  extra_config.size = enroll_count;
  extra_config.seed = config.seed + 1;
  const PfvDataset extra_raw = GenerateClusteredDataset(extra_config);

  std::atomic<bool> enrolling{true};
  std::atomic<bool> failed{false};
  std::vector<double> insert_us;
  insert_us.reserve(enroll_count);
  double enroll_seconds = 0.0;

  std::thread enroller([&] {
    const auto begin = std::chrono::steady_clock::now();
    for (size_t i = 0; i < extra_raw.size(); ++i) {
      Pfv pfv = extra_raw[i];
      pfv.id = 10000000 + i;  // disjoint from the base gallery's ids
      const auto t0 = std::chrono::steady_clock::now();
      for (;;) {
        const InsertResult result = live_db.Insert(pfv);
        if (result.ok()) break;
        if (result.outcome != InsertOutcome::kDeltaFull) {
          std::cout << "ERROR: insert failed: "
                    << InsertOutcomeName(result.outcome) << " "
                    << result.message << "\n";
          failed.store(true);
          return;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      insert_us.push_back(
          std::chrono::duration<double, std::micro>(
              std::chrono::steady_clock::now() - t0)
              .count());
    }
    enroll_seconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - begin)
                         .count();
    enrolling.store(false);
  });

  // Query traffic riding the enrollment window; the last batch completed
  // while enrollment was still running provides the under-load stats.
  const std::vector<Query> live_batch = make_batch(256);
  ServiceStats under_load;
  size_t concurrent_batches = 0;
  while (enrolling.load() && !failed.load()) {
    const BatchResult result = live.ExecuteBatch(live_batch);
    for (const QueryResponse& response : result.responses) {
      if (response.status != QueryResponse::Status::kOk) {
        std::cout << "ERROR: query failed under enrollment\n";
        failed.store(true);
        break;
      }
    }
    if (enrolling.load()) {
      under_load = result.stats;
      ++concurrent_batches;
    }
  }
  enroller.join();
  if (failed.load()) std::exit(1);
  size_t sustain_accepted = 0;
  if (concurrent_batches == 0) {
    // The timed burst above can finish before one batch completes (enrolling
    // is orders of magnitude faster than querying). Re-measure one batch
    // with a sustaining enroller running for its entire duration, so the
    // "query under enroll" cell is always an under-insert-load sample.
    std::atomic<bool> batch_done{false};
    std::thread sustainer([&] {
      for (size_t i = 0; !batch_done.load(); ++i) {
        Pfv pfv = extra_raw[i % extra_raw.size()];
        pfv.id = 20000000 + i;  // disjoint from base and burst ids
        const InsertResult result = live_db.Insert(pfv);
        if (result.ok()) {
          ++sustain_accepted;
        } else if (result.outcome == InsertOutcome::kDeltaFull) {
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        } else {
          std::cout << "ERROR: sustained insert failed: "
                    << InsertOutcomeName(result.outcome) << "\n";
          failed.store(true);
          return;
        }
      }
    });
    const BatchResult result = live.ExecuteBatch(live_batch);
    batch_done.store(true);
    sustainer.join();
    if (failed.load()) std::exit(1);
    for (const QueryResponse& response : result.responses) {
      if (response.status != QueryResponse::Status::kOk) {
        std::cout << "ERROR: query failed under sustained enrollment\n";
        std::exit(1);
      }
    }
    under_load = result.stats;
    ++concurrent_batches;
  }

  // Drain the delta and verify nothing was lost across the epoch swaps.
  live_db.MergeIngest();
  const IngestStats ingest_stats = live_db.ingest_stats();
  if (live_db.size() != dataset.size() + enroll_count + sustain_accepted) {
    std::cout << "ERROR: live ingest lost objects: " << live_db.size()
              << " != " << dataset.size() + enroll_count + sustain_accepted
              << "\n";
    std::exit(1);
  }

  std::sort(insert_us.begin(), insert_us.end());
  const double insert_p99 =
      insert_us.empty()
          ? 0.0
          : insert_us[static_cast<size_t>(
                static_cast<double>(insert_us.size() - 1) * 0.99)];
  const double enroll_qps =
      enroll_seconds > 0.0 ? static_cast<double>(enroll_count) / enroll_seconds
                           : 0.0;

  Table itable({"metric", "value"});
  itable.AddRow({"enrollments", Table::Int(enroll_count)});
  itable.AddRow({"ingest qps", Table::Num(enroll_qps)});
  itable.AddRow({"insert p99 us", Table::Num(insert_p99)});
  itable.AddRow({"query qps under enroll", Table::Num(under_load.qps)});
  itable.AddRow({"query p99 us under enroll",
                 Table::Num(under_load.latency.p99_us)});
  itable.AddRow({"concurrent batches", Table::Int(concurrent_batches)});
  itable.AddRow({"merges completed", Table::Int(ingest_stats.merges_completed)});
  itable.Print(std::cout);
  std::cout << "final size verified: base + every accepted enrollment\n";

  BenchCellMetrics enroll_metrics;
  enroll_metrics.bench = "sweep_concurrency";
  enroll_metrics.scale = scale;
  enroll_metrics.cell = "ingest,enroll";
  enroll_metrics.qps = enroll_qps;
  enroll_metrics.p99_us = insert_p99;
  AppendBenchJson(enroll_metrics);

  BenchCellMetrics mixed_metrics;
  mixed_metrics.bench = "sweep_concurrency";
  mixed_metrics.scale = scale;
  mixed_metrics.cell = "ingest,query_under_enroll";
  mixed_metrics.qps = under_load.qps;
  mixed_metrics.p99_us = under_load.latency.p99_us;
  mixed_metrics.pages_per_query = under_load.pages_per_query();
  AppendBenchJson(mixed_metrics);
}

}  // namespace
}  // namespace gauss::bench

int main() {
  gauss::bench::Run();
  return 0;
}
