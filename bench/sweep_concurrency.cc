// GaussDb scaling sweep: worker threads x batch size -> QPS, p50/p99
// latency, logical pages per query. One database is built once and served
// through per-cell Sessions (each Serve() call builds an independent
// sharded-cache + worker-pool stack over the same finalized pages); every
// (threads, batch) cell runs the same MLIQ workload on a warm cache, and the
// answers of every cell are checked against the single-worker run, so the
// speedup numbers can't come from computing something different.
//
// Scaling expectation: queries are independent read-only traversals, so QPS
// grows with worker count until the machine runs out of cores (on a 1-core
// container all cells collapse to single-thread throughput — the sweep
// reports hardware_concurrency so the context is visible in the output).
//
// GAUSS_BENCH_SCALE in (0,1] shrinks the dataset for quick runs.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <thread>
#include <vector>

#include "api/gauss_db.h"
#include "data/generators.h"
#include "data/workload.h"
#include "eval/report.h"

namespace gauss::bench {
namespace {

// Compares the shared prefix: every batch is a prefix of the 512-query
// reference workload, so answer i must match answer i.
bool SameAnswers(const BatchResult& a, const BatchResult& b) {
  const size_t n = std::min(a.responses.size(), b.responses.size());
  for (size_t i = 0; i < n; ++i) {
    const auto& x = a.responses[i].items;
    const auto& y = b.responses[i].items;
    if (x.size() != y.size()) return false;
    for (size_t j = 0; j < x.size(); ++j) {
      if (x[j].id != y[j].id ||
          std::memcmp(&x[j].probability, &y[j].probability, sizeof(double)) !=
              0) {
        return false;
      }
    }
  }
  return true;
}

void Run() {
  PrintBanner(std::cout, "GaussDb concurrency sweep (3-MLIQ, warm cache)");
  double scale = 1.0;
  if (const char* env = std::getenv("GAUSS_BENCH_SCALE")) {
    const double s = std::atof(env);
    if (s > 0.0 && s <= 1.0) scale = s;
  }

  ClusteredDatasetConfig config;
  config.size = static_cast<size_t>(100000 * scale);
  config.dim = 10;
  const PfvDataset dataset = GenerateClusteredDataset(config);

  GaussDb db = GaussDb::CreateInMemory(config.dim);
  db.Build(dataset);

  WorkloadConfig wconfig;
  wconfig.query_count = 512;
  const auto workload = GenerateWorkload(dataset, wconfig);

  std::cout << "objects: " << dataset.size()
            << "  hardware threads: " << std::thread::hardware_concurrency()
            << "\n\n";

  Table table({"workers", "batch", "qps", "speedup", "p50 us", "p99 us",
               "pages/query"});
  double single_thread_qps = 0.0;

  auto make_batch = [&](size_t batch_size) {
    std::vector<Query> batch;
    batch.reserve(batch_size);
    for (size_t i = 0; i < batch_size; ++i) {
      batch.push_back(
          Query::Mliq(workload[i % workload.size()].query, /*k=*/3)
              .Accuracy(1e-2));
    }
    return batch;
  };

  // Reference answers from a dedicated single-worker run over the full
  // workload, captured before the sweep so *every* cell is checked against
  // it (smaller batches are prefixes, so answer i must match answer i).
  ServeOptions ref_serve;
  ref_serve.num_workers = 1;
  ref_serve.cache_pages = 1 << 15;
  const BatchResult reference =
      db.Serve(ref_serve).ExecuteBatch(make_batch(512));

  for (size_t workers : {1, 2, 4, 8, 16}) {
    for (size_t batch_size : {64, 512}) {
      const std::vector<Query> batch = make_batch(batch_size);

      // Serving pool sized for the whole tree: the sweep measures
      // concurrency scaling, not cache misses (sweep_cache covers those).
      ServeOptions serve;
      serve.num_workers = workers;
      serve.cache_pages = 1 << 15;
      serve.queue_capacity = batch_size;
      Session session = db.Serve(serve);

      session.ExecuteBatch(batch);  // warm the cache and the threads
      session.cache().ResetStats();
      BatchResult result = session.ExecuteBatch(batch);

      if (!SameAnswers(result, reference)) {
        std::cout << "ERROR: answers diverged at " << workers << " workers\n";
        std::exit(1);
      }

      const ServiceStats& stats = result.stats;
      if (workers == 1 && batch_size == 512) single_thread_qps = stats.qps;
      table.AddRow(
          {Table::Int(workers), Table::Int(batch_size), Table::Num(stats.qps),
           single_thread_qps > 0.0 && workers > 1
               ? Table::Num(stats.qps / single_thread_qps, 2) + "x"
               : "-",
           Table::Num(stats.latency.p50_us), Table::Num(stats.latency.p99_us),
           Table::Num(stats.pages_per_query())});
    }
  }
  table.Print(std::cout);
  std::cout << "speedup is vs 1 worker / batch 512; answers of every cell "
               "verified identical to the single-worker run\n";
}

}  // namespace
}  // namespace gauss::bench

int main() {
  gauss::bench::Run();
  return 0;
}
