// Ablation A1 (DESIGN.md): does the paper's hull-integral split criterion
// actually beat simpler alternatives? Builds the same dataset under the
// three split strategies and compares structure quality and query cost.

#include <cstdio>
#include <iostream>

#include "data/paper_datasets.h"
#include "eval/experiment.h"
#include "eval/report.h"
#include "gausstree/gauss_tree.h"
#include "gausstree/mliq.h"
#include "gausstree/tiq.h"
#include "gausstree/tree_stats.h"
#include "storage/buffer_pool.h"
#include "storage/page_device.h"

namespace gauss::bench {
namespace {

const char* StrategyName(SplitStrategy strategy) {
  switch (strategy) {
    case SplitStrategy::kHullIntegral:
      return "hull-integral (paper)";
    case SplitStrategy::kVolume:
      return "parameter-space volume";
    case SplitStrategy::kMuOnly:
      return "mu-axes only";
  }
  return "?";
}

void Run() {
  PrintBanner(std::cout, "Ablation A1: split strategy");
  double scale = 1.0;
  if (const char* env = std::getenv("GAUSS_BENCH_SCALE")) {
    const double s = std::atof(env);
    if (s > 0.0 && s <= 1.0) scale = s;
  }
  const PaperDataset data =
      GeneratePaperDataset2(static_cast<size_t>(50000 * scale));
  const auto workload = GeneratePaperWorkload(data, 50);

  Table table({"strategy", "leaf fill", "avg leaf hull-integral",
               "MLIQ pages", "TIQ(0.2) pages"});
  for (SplitStrategy strategy :
       {SplitStrategy::kHullIntegral, SplitStrategy::kVolume,
        SplitStrategy::kMuOnly}) {
    InMemoryPageDevice device(kDefaultPageSize);
    BufferPool pool(&device, 1 << 16);
    GaussTreeOptions options;
    options.split_strategy = strategy;
    GaussTree tree(&pool, data.dataset.dim(), options);
    tree.BulkInsert(data.dataset);
    tree.Finalize();

    const GaussTreeStats stats = tree.ComputeStats();
    const auto profile = ProfileLevels(tree);
    const double leaf_integral = profile.back().avg_hull_integral;

    MliqOptions mliq_options;
    mliq_options.probability_accuracy = 1e-2;
    TiqOptions tiq_options;
    tiq_options.exact_membership = false;
    uint64_t mliq_pages = 0, tiq_pages = 0;
    for (const auto& iq : workload) {
      pool.Clear();
      pool.ResetStats();
      QueryMliq(tree, iq.query, 1, mliq_options);
      mliq_pages += pool.stats().physical_reads;
      pool.Clear();
      pool.ResetStats();
      QueryTiq(tree, iq.query, 0.2, tiq_options);
      tiq_pages += pool.stats().physical_reads;
    }
    table.AddRow({StrategyName(strategy),
                  Table::Pct(100 * stats.avg_leaf_fill),
                  Table::Num(leaf_integral, 3),
                  Table::Num(static_cast<double>(mliq_pages) /
                                 static_cast<double>(workload.size())),
                  Table::Num(static_cast<double>(tiq_pages) /
                                 static_cast<double>(workload.size()))});
  }
  table.Print(std::cout);
  std::cout << "expectation: the paper's criterion yields the most selective "
               "leaves (smallest hull integral) and the fewest page reads\n";
}

}  // namespace
}  // namespace gauss::bench

int main() {
  gauss::bench::Run();
  return 0;
}
