// Ablation A5 (DESIGN.md): query-parameter sweeps — k for k-MLIQ, the
// threshold for TIQ, and the probability-accuracy knob that trades
// certification tightness for page accesses (the paper's "according to
// user's specification of exactness").

#include <cstdio>
#include <iostream>

#include "data/paper_datasets.h"
#include "eval/report.h"
#include "gausstree/gauss_tree.h"
#include "gausstree/mliq.h"
#include "gausstree/tiq.h"
#include "pfv/pfv_file.h"
#include "storage/buffer_pool.h"
#include "storage/page_device.h"

namespace gauss::bench {
namespace {

struct Env {
  InMemoryPageDevice device{kDefaultPageSize};
  BufferPool pool{&device, 1 << 16};
  std::unique_ptr<GaussTree> tree;
  std::unique_ptr<PfvFile> file;
  PaperDataset data;
  std::vector<IdentificationQuery> workload;
};

std::unique_ptr<Env> Build() {
  double scale = 1.0;
  if (const char* env = std::getenv("GAUSS_BENCH_SCALE")) {
    const double s = std::atof(env);
    if (s > 0.0 && s <= 1.0) scale = s;
  }
  auto env = std::make_unique<Env>();
  env->data = GeneratePaperDataset2(static_cast<size_t>(100000 * scale));
  env->tree = std::make_unique<GaussTree>(&env->pool, env->data.dataset.dim());
  env->file = std::make_unique<PfvFile>(&env->pool, env->data.dataset.dim());
  env->tree->BulkInsert(env->data.dataset);
  env->tree->Finalize();
  env->file->AppendAll(env->data.dataset);
  env->workload = GeneratePaperWorkload(env->data, 50);
  return env;
}

void KSweep(Env& env) {
  PrintBanner(std::cout, "A5: k sweep for k-MLIQ (data set 2)");
  Table table({"k", "pages", "objects evaluated", "recall of true id"});
  MliqOptions options;
  options.probability_accuracy = 1e-2;
  for (size_t k : {1, 2, 5, 10, 20, 50}) {
    uint64_t pages = 0, evals = 0;
    size_t hits = 0;
    for (const auto& iq : env.workload) {
      env.pool.Clear();
      env.pool.ResetStats();
      const MliqResult r = QueryMliq(*env.tree, iq.query, k, options);
      pages += env.pool.stats().physical_reads;
      evals += r.stats.objects_evaluated;
      for (const auto& item : r.items) {
        if (item.id == iq.true_id) {
          ++hits;
          break;
        }
      }
    }
    const double n = static_cast<double>(env.workload.size());
    table.AddRow({Table::Int(k), Table::Num(pages / n),
                  Table::Num(evals / n),
                  Table::Pct(100.0 * static_cast<double>(hits) / n)});
  }
  table.Print(std::cout);
}

void ThresholdSweep(Env& env) {
  PrintBanner(std::cout, "A5: threshold sweep for TIQ (data set 2)");
  Table table({"threshold", "pages", "avg results"});
  TiqOptions options;
  options.exact_membership = false;
  for (double theta : {0.05, 0.1, 0.2, 0.4, 0.6, 0.8, 0.95}) {
    uint64_t pages = 0;
    size_t results = 0;
    for (const auto& iq : env.workload) {
      env.pool.Clear();
      env.pool.ResetStats();
      results += QueryTiq(*env.tree, iq.query, theta, options).items.size();
      pages += env.pool.stats().physical_reads;
    }
    const double n = static_cast<double>(env.workload.size());
    table.AddRow({Table::Num(theta, 2), Table::Num(pages / n),
                  Table::Num(results / n, 2)});
  }
  table.Print(std::cout);
}

void AccuracySweep(Env& env) {
  PrintBanner(std::cout,
              "A5: probability-accuracy sweep for 1-MLIQ (data set 2)");
  Table table({"accuracy", "pages", "max prob error"});
  for (double accuracy : {1e-1, 1e-2, 1e-3, 1e-4, 1e-6}) {
    MliqOptions options;
    options.probability_accuracy = accuracy;
    uint64_t pages = 0;
    double max_err = 0.0;
    for (const auto& iq : env.workload) {
      env.pool.Clear();
      env.pool.ResetStats();
      const MliqResult r = QueryMliq(*env.tree, iq.query, 1, options);
      pages += env.pool.stats().physical_reads;
      if (!r.items.empty()) {
        max_err = std::max(max_err, r.items[0].probability_error);
      }
    }
    table.AddRow({Table::Num(accuracy, 6),
                  Table::Num(pages / static_cast<double>(env.workload.size())),
                  Table::Num(max_err, 7)});
  }
  table.Print(std::cout);
  std::cout << "expectation: pages rise as the certification tightens; the "
               "phase-1 ranking itself is always exact\n";
}

}  // namespace
}  // namespace gauss::bench

int main() {
  auto env = gauss::bench::Build();
  gauss::bench::KSweep(*env);
  gauss::bench::ThresholdSweep(*env);
  gauss::bench::AccuracySweep(*env);
  return 0;
}
