// Ablation A2 (DESIGN.md): erf-based versus degree-5 sigmoid-polynomial
// evaluation of the hull integral — the paper used the polynomial; this
// bench quantifies accuracy and the (lack of) downstream effect on the tree.

#include <cmath>
#include <cstdio>
#include <iostream>

#include "common/random.h"
#include "common/stopwatch.h"
#include "data/paper_datasets.h"
#include "eval/report.h"
#include "gausstree/gauss_tree.h"
#include "gausstree/mliq.h"
#include "gausstree/tree_stats.h"
#include "math/hull_integral.h"
#include "storage/buffer_pool.h"
#include "storage/page_device.h"

namespace gauss::bench {
namespace {

void AccuracyTable() {
  PrintBanner(std::cout, "Ablation A2: hull-integral evaluation method");
  Rng rng(12345);
  double max_abs = 0.0, max_rel = 0.0;
  for (int i = 0; i < 100000; ++i) {
    DimBounds b;
    b.mu_lo = rng.Uniform(-2, 2);
    b.mu_hi = b.mu_lo + rng.Uniform(0, 2);
    b.sigma_lo = rng.Uniform(0.001, 1.0);
    b.sigma_hi = b.sigma_lo + rng.Uniform(0, 1.0);
    const double erf_value = UpperHullIntegral(b, IntegralMethod::kErf);
    const double poly_value =
        UpperHullIntegral(b, IntegralMethod::kSigmoidPoly5);
    const double abs_err = std::fabs(erf_value - poly_value);
    max_abs = std::max(max_abs, abs_err);
    max_rel = std::max(max_rel, abs_err / erf_value);
  }
  std::printf("max abs error over 100k random boxes: %.3e\n", max_abs);
  std::printf("max rel error over 100k random boxes: %.3e\n", max_rel);
}

void ThroughputTable() {
  Rng rng(777);
  std::vector<DimBounds> boxes(4096);
  for (DimBounds& b : boxes) {
    b.mu_lo = rng.Uniform(-2, 2);
    b.mu_hi = b.mu_lo + rng.Uniform(0, 2);
    b.sigma_lo = rng.Uniform(0.001, 1.0);
    b.sigma_hi = b.sigma_lo + rng.Uniform(0, 1.0);
  }
  Table table({"method", "evals/s"});
  for (IntegralMethod method :
       {IntegralMethod::kErf, IntegralMethod::kSigmoidPoly5}) {
    Stopwatch sw;
    double sink = 0.0;
    const int reps = 2000;
    for (int r = 0; r < reps; ++r) {
      for (const DimBounds& b : boxes) sink += UpperHullIntegral(b, method);
    }
    const double secs = sw.ElapsedSeconds();
    table.AddRow({method == IntegralMethod::kErf ? "erf" : "sigmoid-poly5",
                  Table::Num(reps * boxes.size() / secs / 1e6, 1) + "M"});
    if (sink == 12345.0) std::printf("?");  // keep the loop alive
  }
  table.Print(std::cout);
}

void DownstreamTable() {
  double scale = 1.0;
  if (const char* env = std::getenv("GAUSS_BENCH_SCALE")) {
    const double s = std::atof(env);
    if (s > 0.0 && s <= 1.0) scale = s;
  }
  const PaperDataset data =
      GeneratePaperDataset2(static_cast<size_t>(30000 * scale));
  const auto workload = GeneratePaperWorkload(data, 30);
  Table table({"method", "leaf hull-integral", "MLIQ pages"});
  for (IntegralMethod method :
       {IntegralMethod::kErf, IntegralMethod::kSigmoidPoly5}) {
    InMemoryPageDevice device(kDefaultPageSize);
    BufferPool pool(&device, 1 << 16);
    GaussTreeOptions options;
    options.integral_method = method;
    GaussTree tree(&pool, data.dataset.dim(), options);
    tree.BulkInsert(data.dataset);
    tree.Finalize();
    const auto profile = ProfileLevels(tree);
    MliqOptions mliq_options;
    mliq_options.probability_accuracy = 1e-2;
    uint64_t pages = 0;
    for (const auto& iq : workload) {
      pool.Clear();
      pool.ResetStats();
      QueryMliq(tree, iq.query, 1, mliq_options);
      pages += pool.stats().physical_reads;
    }
    table.AddRow({method == IntegralMethod::kErf ? "erf" : "sigmoid-poly5",
                  Table::Num(profile.back().avg_hull_integral, 3),
                  Table::Num(static_cast<double>(pages) /
                                 static_cast<double>(workload.size()))});
  }
  table.Print(std::cout);
  std::cout << "expectation: identical trees (split decisions agree), so the "
               "approximation the paper used costs nothing in quality\n";
}

}  // namespace
}  // namespace gauss::bench

int main() {
  gauss::bench::AccuracyTable();
  gauss::bench::ThroughputTable();
  gauss::bench::DownstreamTable();
  return 0;
}
