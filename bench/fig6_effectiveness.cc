// Reproduces Figure 6 of the paper: precision and recall of the conventional
// nearest-neighbour query on mean vectors versus the k-MLIQ on probabilistic
// feature vectors, at result-set scales x1..x9, on both data sets.
//
// Paper shape to reproduce: MLIQ achieves near-perfect precision and recall
// at x1 (98% / 99%); the NN query starts much lower (42% on data set 1, 61%
// on data set 2); increasing the NN result set raises recall only slowly
// while precision collapses (~ recall / x), so no choice of k compensates
// for ignoring the uncertainty.

#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "eval/metrics.h"

namespace gauss::bench {
namespace {

void RunDataset(int which, size_t query_count) {
  PrintBanner(std::cout, "Figure 6(" + std::string(which == 1 ? "a" : "b") +
                             "): data set " + std::to_string(which));
  auto env = BuildEnvironment(which, query_count, /*build_xtree=*/false);
  std::printf("objects=%zu dim=%zu queries=%zu\n", env->data.dataset.size(),
              env->data.dataset.dim(), env->workload.size());

  constexpr size_t kMaxScale = 9;
  std::vector<std::vector<uint64_t>> nn_lists, mliq_lists;
  std::vector<uint64_t> truth;
  MliqOptions options;
  options.refine_probabilities = false;  // ranking only
  for (const auto& iq : env->workload) {
    truth.push_back(iq.true_id);
    nn_lists.push_back(env->scan->QueryKnnMeans(iq.query, kMaxScale));
    const MliqResult mliq =
        QueryMliq(*env->tree, iq.query, kMaxScale, options);
    std::vector<uint64_t> ids;
    for (const auto& item : mliq.items) ids.push_back(item.id);
    mliq_lists.push_back(std::move(ids));
  }

  Table table({"scale", "NN precision", "NN recall", "MLIQ precision",
               "MLIQ recall"});
  for (size_t x = 1; x <= kMaxScale; ++x) {
    const PrecisionRecall nn = EvaluateAtScale(nn_lists, truth, x);
    const PrecisionRecall mliq = EvaluateAtScale(mliq_lists, truth, x);
    table.AddRow({"x" + std::to_string(x), Table::Pct(100 * nn.precision),
                  Table::Pct(100 * nn.recall), Table::Pct(100 * mliq.precision),
                  Table::Pct(100 * mliq.recall)});
  }
  table.Print(std::cout);

  const PrecisionRecall nn1 = EvaluateAtScale(nn_lists, truth, 1);
  const PrecisionRecall m1 = EvaluateAtScale(mliq_lists, truth, 1);
  std::printf(
      "summary: MLIQ@x1 %.0f%% vs NN@x1 %.0f%% (paper: %s)\n",
      100 * m1.recall, 100 * nn1.recall,
      which == 1 ? "98%% vs 42%%" : "99%% vs 61%%");
}

}  // namespace
}  // namespace gauss::bench

int main() {
  gauss::bench::RunDataset(1, 100);  // paper: 100 queries on data set 1
  gauss::bench::RunDataset(2, 500);  // paper: 500 queries on data set 2
  return 0;
}
