"""Unit tests for the CI bench-regression guard (bench/check_regression.py).

The guard gates every merge, so its tolerance arithmetic and min-over-runs
noise handling must themselves be tested code. Run with either

  python -m pytest bench/test_check_regression.py        # CI
  python -m unittest bench.test_check_regression         # stdlib-only

(unittest.TestCase classes so both runners discover the same tests; the CI
workflow uses pytest for its reporting).
"""

import json
import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import check_regression


def cell(name, pages=10.0, p99=100.0, bench="sweep_x", scale=1.0, **extra):
    record = {"bench": bench, "scale": scale, "cell": name,
              "pages_per_query": pages, "p99_us": p99}
    record.update(extra)
    return record


class GuardTestCase(unittest.TestCase):
    """Shared plumbing: write JSON-lines files, run the guard, check rc."""

    def setUp(self):
        self._dir = tempfile.TemporaryDirectory()
        self.addCleanup(self._dir.cleanup)

    def write_jsonl(self, name, records):
        path = os.path.join(self._dir.name, name)
        with open(path, "w", encoding="utf-8") as f:
            for record in records:
                f.write(json.dumps(record) + "\n")
        return path

    def run_guard(self, current, baseline, *extra_args):
        argv = ["--current", self.write_jsonl("current.json", current),
                "--baseline", self.write_jsonl("baseline.json", baseline)]
        argv.extend(extra_args)
        return check_regression.main(argv)


class ToleranceTest(GuardTestCase):
    def test_identical_metrics_pass(self):
        records = [cell("a"), cell("b", pages=33.3, p99=912.5)]
        self.assertEqual(self.run_guard(records, records), 0)

    def test_growth_within_tolerance_passes(self):
        base = [cell("a", pages=100.0, p99=100.0)]
        current = [cell("a", pages=114.9, p99=114.9)]  # +14.9% < 15%
        self.assertEqual(self.run_guard(current, base), 0)

    def test_growth_beyond_tolerance_fails(self):
        base = [cell("a", pages=100.0)]
        current = [cell("a", pages=115.2)]  # +15.2% > 15%
        self.assertEqual(self.run_guard(current, base), 1)

    def test_improvement_never_fails(self):
        base = [cell("a", pages=100.0, p99=100.0)]
        current = [cell("a", pages=1.0, p99=1.0)]
        self.assertEqual(self.run_guard(current, base), 0)

    def test_custom_tolerance_is_respected(self):
        base = [cell("a", p99=100.0)]
        current = [cell("a", p99=160.0)]  # +60%
        self.assertEqual(
            self.run_guard(current, base, "--tolerance-p99", "0.75",
                           "--skip-pages"), 0)
        self.assertEqual(
            self.run_guard(current, base, "--tolerance-p99", "0.5",
                           "--skip-pages"), 1)

    def test_zero_baseline_metric_is_skipped(self):
        # b <= 0 means "nothing meaningful to compare": a cell whose
        # baseline never measured the metric cannot regress on it.
        base = [cell("a", pages=0.0, p99=0.0)]
        current = [cell("a", pages=42.0, p99=1e9)]
        self.assertEqual(self.run_guard(current, base), 0)


class MinOverRunsTest(GuardTestCase):
    def test_minimum_p99_across_runs_wins(self):
        # Two appended runs: the first is scheduler-polluted, the second
        # clean. The guard must compare the minimum, not the last.
        base = [cell("a", p99=100.0)]
        current = [cell("a", p99=1000.0), cell("a", p99=101.0)]
        self.assertEqual(self.run_guard(current, base, "--skip-pages"), 0)

    def test_minimum_still_regressing_fails(self):
        base = [cell("a", p99=100.0)]
        current = [cell("a", p99=1000.0), cell("a", p99=900.0)]
        self.assertEqual(self.run_guard(current, base, "--skip-pages"), 1)

    def test_deterministic_metrics_keep_last_occurrence(self):
        # pages/query is append-mode too, but deterministic: the last line
        # wins (a re-run fixes a stale earlier line).
        base = [cell("a", pages=100.0)]
        current = [cell("a", pages=500.0, p99=90.0),
                   cell("a", pages=100.0, p99=90.0)]
        self.assertEqual(self.run_guard(current, base, "--skip-p99"), 0)

    def test_run_missing_p99_does_not_zero_the_minimum(self):
        # A record without p99_us must not collapse min() to 0 and mask a
        # real timing regression observed by the other runs.
        base = [cell("a", p99=100.0)]
        current = [cell("a", p99=900.0),
                   {"bench": "sweep_x", "scale": 1.0, "cell": "a",
                    "pages_per_query": 10.0}]
        self.assertEqual(self.run_guard(current, base, "--skip-pages"), 1)

    def test_min_is_per_cell_not_global(self):
        base = [cell("a", p99=100.0), cell("b", p99=100.0)]
        current = [cell("a", p99=50.0), cell("b", p99=500.0)]
        self.assertEqual(self.run_guard(current, base, "--skip-pages"), 1)


class NsPerEntryTest(GuardTestCase):
    """ns_per_entry (micro_kernels cells) is a timing metric like p99_us:
    min-collapsed across appended runs, gated under --skip-p99 /
    --tolerance-p99, skipped when the baseline never measured it."""

    def test_kernel_regression_fails(self):
        base = [cell("k", pages=0.0, p99=0.0, ns_per_entry=10.0)]
        current = [cell("k", pages=0.0, p99=0.0, ns_per_entry=20.0)]
        self.assertEqual(self.run_guard(current, base, "--skip-pages"), 1)

    def test_kernel_within_tolerance_passes(self):
        base = [cell("k", ns_per_entry=10.0)]
        current = [cell("k", ns_per_entry=11.0)]  # +10% < 15%
        self.assertEqual(self.run_guard(current, base), 0)

    def test_minimum_across_runs_wins(self):
        base = [cell("k", ns_per_entry=10.0)]
        current = [cell("k", ns_per_entry=100.0, p99=90.0),
                   cell("k", ns_per_entry=10.5, p99=90.0)]
        self.assertEqual(self.run_guard(current, base, "--skip-pages"), 0)

    def test_skip_p99_skips_kernel_timing_too(self):
        base = [cell("k", ns_per_entry=10.0)]
        current = [cell("k", ns_per_entry=1000.0)]
        self.assertEqual(self.run_guard(current, base, "--skip-p99"), 0)

    def test_serving_cells_without_kernel_metric_unaffected(self):
        # Serving-bench cells carry ns_per_entry = 0 (or omit it): the
        # guard must not invent a kernel gate for them.
        base = [cell("a", ns_per_entry=0.0), cell("b")]
        current = [cell("a", ns_per_entry=123.0), cell("b")]
        self.assertEqual(self.run_guard(current, base), 0)


class CoverageTest(GuardTestCase):
    def test_baseline_cell_missing_from_current_fails(self):
        # Silently losing bench coverage is itself a regression.
        base = [cell("a"), cell("b")]
        current = [cell("a")]
        self.assertEqual(self.run_guard(current, base), 1)

    def test_new_current_cell_is_reported_but_passes(self):
        base = [cell("a")]
        current = [cell("a"), cell("brand_new")]
        self.assertEqual(self.run_guard(current, base), 0)

    def test_cells_keyed_by_bench_scale_and_cell(self):
        # Same cell name at another scale is a different measurement; it
        # must not satisfy the coverage check for the baseline's scale.
        base = [cell("a", scale=1.0)]
        current = [cell("a", scale=0.02)]
        self.assertEqual(self.run_guard(current, base), 1)

    def test_empty_baseline_is_an_error(self):
        with self.assertRaises(SystemExit):
            self.run_guard([cell("a")], [])

    def test_skipping_both_gates_is_an_error(self):
        with self.assertRaises(SystemExit):
            self.run_guard([cell("a")], [cell("a")],
                           "--skip-pages", "--skip-p99")

    def test_malformed_json_line_is_an_error(self):
        base = self.write_jsonl("baseline.json", [cell("a")])
        current = os.path.join(self._dir.name, "broken.json")
        with open(current, "w", encoding="utf-8") as f:
            f.write('{"bench": "x", truncated\n')
        with self.assertRaises(SystemExit):
            check_regression.main(["--current", current, "--baseline", base])


if __name__ == "__main__":
    unittest.main()
