// Ablation A3 (DESIGN.md): database-size and dimensionality scaling of the
// Gauss-tree versus the sequential scan, plus the uniform-data worst case
// that shows where hull pruning breaks down (curse of dimensionality).

#include <cstdio>
#include <iostream>

#include "data/generators.h"
#include "data/workload.h"
#include "eval/report.h"
#include "gausstree/gauss_tree.h"
#include "gausstree/mliq.h"
#include "pfv/pfv_file.h"
#include "storage/buffer_pool.h"
#include "storage/page_device.h"

namespace gauss::bench {
namespace {

struct Result {
  uint64_t tree_pages = 0;
  uint64_t scan_pages = 0;
  size_t hits = 0;
  size_t queries = 0;
};

Result Measure(const PfvDataset& dataset, const SigmaModel& sigma_model,
               size_t query_count) {
  InMemoryPageDevice device(kDefaultPageSize);
  BufferPool pool(&device, 1 << 16);
  GaussTree tree(&pool, dataset.dim());
  PfvFile file(&pool, dataset.dim());
  tree.BulkInsert(dataset);
  tree.Finalize();
  file.AppendAll(dataset);

  WorkloadConfig wc;
  wc.query_count = query_count;
  wc.query_sigma_model = sigma_model;
  const auto workload = GenerateWorkload(dataset, wc);

  MliqOptions options;
  options.probability_accuracy = 1e-2;
  Result result;
  result.queries = workload.size();
  result.scan_pages = file.page_count();
  for (const auto& iq : workload) {
    pool.Clear();
    pool.ResetStats();
    const MliqResult r = QueryMliq(tree, iq.query, 1, options);
    result.tree_pages += pool.stats().physical_reads;
    if (!r.items.empty() && r.items[0].id == iq.true_id) ++result.hits;
  }
  result.tree_pages /= workload.size();
  return result;
}

void SizeSweep() {
  PrintBanner(std::cout, "A3: database-size sweep (clustered 10-d, 1-MLIQ)");
  double scale = 1.0;
  if (const char* env = std::getenv("GAUSS_BENCH_SCALE")) {
    const double s = std::atof(env);
    if (s > 0.0 && s <= 1.0) scale = s;
  }
  Table table({"objects", "tree pages", "scan pages", "tree/scan", "hit rate"});
  for (size_t n : {10000, 25000, 50000, 100000, 200000}) {
    ClusteredDatasetConfig config;
    config.size = static_cast<size_t>(n * scale);
    const PfvDataset dataset = GenerateClusteredDataset(config);
    const Result r = Measure(dataset, config.sigma_model, 30);
    table.AddRow({Table::Int(config.size), Table::Int(r.tree_pages),
                  Table::Int(r.scan_pages),
                  Table::Pct(100.0 * static_cast<double>(r.tree_pages) /
                             static_cast<double>(r.scan_pages)),
                  Table::Pct(100.0 * static_cast<double>(r.hits) /
                             static_cast<double>(r.queries))});
  }
  table.Print(std::cout);
  std::cout << "expectation: the index's relative advantage grows with the "
               "database size (scan cost is linear, index cost sublinear)\n";
}

void DimSweep() {
  PrintBanner(std::cout, "A3: dimensionality sweep (clustered, 50k, 1-MLIQ)");
  double scale = 1.0;
  if (const char* env = std::getenv("GAUSS_BENCH_SCALE")) {
    const double s = std::atof(env);
    if (s > 0.0 && s <= 1.0) scale = s;
  }
  Table table({"dim", "tree pages", "scan pages", "tree/scan", "hit rate"});
  for (size_t dim : {2, 5, 10, 20, 40}) {
    ClusteredDatasetConfig config;
    config.size = static_cast<size_t>(50000 * scale);
    config.dim = dim;
    const PfvDataset dataset = GenerateClusteredDataset(config);
    const Result r = Measure(dataset, config.sigma_model, 30);
    table.AddRow({Table::Int(dim), Table::Int(r.tree_pages),
                  Table::Int(r.scan_pages),
                  Table::Pct(100.0 * static_cast<double>(r.tree_pages) /
                             static_cast<double>(r.scan_pages)),
                  Table::Pct(100.0 * static_cast<double>(r.hits) /
                             static_cast<double>(r.queries))});
  }
  table.Print(std::cout);
}

void UniformWorstCase() {
  PrintBanner(std::cout,
              "A3: i.i.d. uniform worst case (no index can prune here)");
  double scale = 1.0;
  if (const char* env = std::getenv("GAUSS_BENCH_SCALE")) {
    const double s = std::atof(env);
    if (s > 0.0 && s <= 1.0) scale = s;
  }
  Table table({"dim", "tree pages", "scan pages", "tree/scan"});
  for (size_t dim : {2, 5, 10}) {
    UniformDatasetConfig config;
    config.size = static_cast<size_t>(50000 * scale);
    config.dim = dim;
    const PfvDataset dataset = GenerateUniformDataset(config);
    const Result r = Measure(dataset, config.sigma_model, 20);
    table.AddRow({Table::Int(dim), Table::Int(r.tree_pages),
                  Table::Int(r.scan_pages),
                  Table::Pct(100.0 * static_cast<double>(r.tree_pages) /
                             static_cast<double>(r.scan_pages))});
  }
  table.Print(std::cout);
  std::cout << "expectation: pruning degrades toward (or beyond) 100% as "
               "dimensionality rises on structureless data — real feature "
               "data is clustered, which is what the paper's datasets and "
               "our surrogates exploit\n";
}

}  // namespace
}  // namespace gauss::bench

int main() {
  gauss::bench::SizeSweep();
  gauss::bench::DimSweep();
  gauss::bench::UniformWorstCase();
  return 0;
}
