// Ablation A7 (DESIGN.md): micro-kernels of the hot query path, measured
// with google-benchmark — Gaussian density evaluation, the Lemma 2/3 hull
// bounds, the hull integral, node (de)serialization, and the batch scoring
// kernels (math/kernels.h) across every SIMD backend this CPU can run.
//
// Two modes:
//   * default            — google-benchmark over all registered benches
//                          (batch-kernel benches registered per runnable
//                          backend at startup).
//   * GAUSS_BENCH_JSON   — kernel regression cells: for every runnable
//     set (smoke mode)     backend and kernel, (1) cross-check the output
//                          bit-for-bit against the scalar reference — any
//                          mismatch exits non-zero, which is what makes the
//                          smoke a correctness gate, not just a timer — and
//                          (2) append a {bench, cell, ns_per_entry} JSON
//                          line for bench/check_regression.py.

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "common/random.h"
#include "eval/report.h"
#include "gausstree/node.h"
#include "math/gaussian.h"
#include "math/hull.h"
#include "math/hull_integral.h"
#include "math/kernels.h"

namespace gauss {
namespace {

void BM_GaussianPdf(benchmark::State& state) {
  Rng rng(1);
  const double x = rng.Uniform(-3, 3);
  const double mu = rng.Uniform(-3, 3);
  const double sigma = rng.Uniform(0.1, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(GaussianPdf(x, mu, sigma));
  }
}
BENCHMARK(BM_GaussianPdf);

void BM_GaussianLogPdf(benchmark::State& state) {
  Rng rng(2);
  const double x = rng.Uniform(-3, 3);
  const double mu = rng.Uniform(-3, 3);
  const double sigma = rng.Uniform(0.1, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(GaussianLogPdf(x, mu, sigma));
  }
}
BENCHMARK(BM_GaussianLogPdf);

void BM_JointLogDensityVector(benchmark::State& state) {
  const size_t d = static_cast<size_t>(state.range(0));
  Rng rng(3);
  std::vector<double> mu_v(d), sg_v(d), mu_q(d), sg_q(d);
  for (size_t i = 0; i < d; ++i) {
    mu_v[i] = rng.Uniform(0, 1);
    sg_v[i] = rng.Uniform(0.01, 0.1);
    mu_q[i] = rng.Uniform(0, 1);
    sg_q[i] = rng.Uniform(0.01, 0.1);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(JointLogDensity(mu_v.data(), sg_v.data(),
                                             mu_q.data(), sg_q.data(), d));
  }
}
BENCHMARK(BM_JointLogDensityVector)->Arg(10)->Arg(27);

void BM_LogUpperHull(benchmark::State& state) {
  DimBounds b;
  b.mu_lo = 0.2;
  b.mu_hi = 0.6;
  b.sigma_lo = 0.01;
  b.sigma_hi = 0.08;
  double x = -1.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(LogUpperHull(x, b));
    x += 1e-6;  // sweep across the piecewise cases
    if (x > 2.0) x = -1.0;
  }
}
BENCHMARK(BM_LogUpperHull);

void BM_LogLowerHull(benchmark::State& state) {
  DimBounds b;
  b.mu_lo = 0.2;
  b.mu_hi = 0.6;
  b.sigma_lo = 0.01;
  b.sigma_hi = 0.08;
  double x = -1.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(LogLowerHull(x, b));
    x += 1e-6;
    if (x > 2.0) x = -1.0;
  }
}
BENCHMARK(BM_LogLowerHull);

void BM_HullIntegral(benchmark::State& state) {
  const IntegralMethod method = state.range(0) == 0
                                    ? IntegralMethod::kErf
                                    : IntegralMethod::kSigmoidPoly5;
  DimBounds b;
  b.mu_lo = 0.2;
  b.mu_hi = 0.6;
  b.sigma_lo = 0.01;
  b.sigma_hi = 0.08;
  for (auto _ : state) {
    benchmark::DoNotOptimize(UpperHullIntegral(b, method));
  }
}
BENCHMARK(BM_HullIntegral)->Arg(0)->Arg(1);

GtNode MakeLeaf(size_t dim, size_t records) {
  Rng rng(4);
  GtNode node;
  node.kind = GtNodeKind::kLeaf;
  for (size_t r = 0; r < records; ++r) {
    std::vector<double> mu(dim), sigma(dim);
    for (double& m : mu) m = rng.Uniform(0, 1);
    for (double& s : sigma) s = rng.Uniform(0.01, 0.1);
    node.pfvs.push_back(Pfv(r, std::move(mu), std::move(sigma)));
  }
  return node;
}

void BM_LeafSerialize(benchmark::State& state) {
  const size_t dim = static_cast<size_t>(state.range(0));
  const GtCapacities caps = GtCapacities::ForPageSize(8192, dim);
  const GtNode node = MakeLeaf(dim, caps.leaf);
  std::vector<uint8_t> page(8192);
  for (auto _ : state) {
    node.Serialize(page.data(), dim);
    benchmark::DoNotOptimize(page.data());
  }
}
BENCHMARK(BM_LeafSerialize)->Arg(10)->Arg(27);

void BM_LeafDeserialize(benchmark::State& state) {
  const size_t dim = static_cast<size_t>(state.range(0));
  const GtCapacities caps = GtCapacities::ForPageSize(8192, dim);
  const GtNode node = MakeLeaf(dim, caps.leaf);
  std::vector<uint8_t> page(8192);
  node.Serialize(page.data(), dim);
  for (auto _ : state) {
    benchmark::DoNotOptimize(GtNode::Deserialize(page.data(), dim, 0));
  }
}
BENCHMARK(BM_LeafDeserialize)->Arg(10)->Arg(27);

// ------------------------------ batch kernels -------------------------------

// SoA fixtures shaped like a finalized node's decode-time view: `n` entries
// at node scale (a dim-8 8KiB leaf holds ~60 pfvs), stride padded to
// kernels::kMaxLanes, and — when `edges` — a sprinkling of the values the
// kernels route through their scalar special-case path (denormal/huge
// sigmas, far-off means, NaN/inf), so the bit cross-check also covers the
// block-abort machinery.
struct JointFixture {
  size_t n = 0, dim = 0, stride = 0;
  std::vector<double> planes;  // dim mu planes then dim sigma planes
  std::vector<double> mu_q, sigma_q;

  kernels::JointBatchArgs Args() const {
    kernels::JointBatchArgs args;
    args.mu = planes.data();
    args.sigma = planes.data() + dim * stride;
    args.stride = stride;
    args.n = n;
    args.dim = dim;
    args.mu_q = mu_q.data();
    args.sigma_q = sigma_q.data();
    return args;
  }
};

struct HullFixture {
  size_t n = 0, dim = 0, stride = 0;
  std::vector<double> planes;  // mu_lo | mu_hi | sigma_lo | sigma_hi groups
  std::vector<double> mu_q, sigma_q;

  kernels::HullBatchArgs Args() const {
    kernels::HullBatchArgs args;
    args.mu_lo = planes.data();
    args.mu_hi = planes.data() + dim * stride;
    args.sigma_lo = planes.data() + 2 * dim * stride;
    args.sigma_hi = planes.data() + 3 * dim * stride;
    args.stride = stride;
    args.n = n;
    args.dim = dim;
    args.mu_q = mu_q.data();
    args.sigma_q = sigma_q.data();
    return args;
  }
};

void SprinkleEdges(Rng& rng, double* mu, double* sigma) {
  switch (static_cast<int>(rng.Uniform(0, 6))) {
    case 0: *sigma = 5e-324; break;                                 // denormal
    case 1: *sigma = 1e300; break;
    case 2: *mu = 1e9; break;                                       // huge |z|
    case 3: *mu = std::numeric_limits<double>::quiet_NaN(); break;
    case 4: *mu = std::numeric_limits<double>::infinity(); break;
    default: break;  // leave the ordinary value
  }
}

JointFixture MakeJointFixture(size_t n, size_t dim, bool edges) {
  Rng rng(edges ? 11 : 5);
  JointFixture f;
  f.n = n;
  f.dim = dim;
  f.stride = kernels::PadEntries(n);
  f.planes.assign(2 * dim * f.stride, 0.0);
  for (size_t i = 0; i < dim; ++i) {
    for (size_t j = 0; j < n; ++j) {
      double mu = rng.Uniform(0, 1);
      double sigma = rng.Uniform(0.01, 0.1);
      if (edges && rng.Uniform(0, 1) < 0.2) SprinkleEdges(rng, &mu, &sigma);
      f.planes[i * f.stride + j] = mu;
      f.planes[(dim + i) * f.stride + j] = sigma;
    }
  }
  for (size_t i = 0; i < dim; ++i) {
    f.mu_q.push_back(rng.Uniform(0, 1));
    f.sigma_q.push_back(rng.Uniform(0.01, 0.1));
  }
  return f;
}

HullFixture MakeHullFixture(size_t n, size_t dim, bool edges) {
  Rng rng(edges ? 13 : 7);
  HullFixture f;
  f.n = n;
  f.dim = dim;
  f.stride = kernels::PadEntries(n);
  f.planes.assign(4 * dim * f.stride, 0.0);
  for (size_t i = 0; i < dim; ++i) {
    for (size_t j = 0; j < n; ++j) {
      double lo = rng.Uniform(0, 1), hi = rng.Uniform(0, 1);
      double slo = rng.Uniform(0.01, 0.05), shi = rng.Uniform(0.05, 0.1);
      if (edges && rng.Uniform(0, 1) < 0.2) {
        // Stay inside the hull domain invariant (kernels.h HullBatchArgs:
        // mu_lo <= mu_hi, 0 < sigma_lo <= sigma_hi) — extreme, not invalid.
        switch (static_cast<int>(rng.Uniform(0, 4))) {
          case 0: slo = 5e-324; break;
          case 1: shi = 1e300; break;
          case 2: lo = -1e9; break;
          default: hi = 1e9; break;
        }
      }
      if (lo > hi) std::swap(lo, hi);
      if (slo > shi) std::swap(slo, shi);
      f.planes[i * f.stride + j] = lo;
      f.planes[(dim + i) * f.stride + j] = hi;
      f.planes[(2 * dim + i) * f.stride + j] = slo;
      f.planes[(3 * dim + i) * f.stride + j] = shi;
    }
  }
  for (size_t i = 0; i < dim; ++i) {
    f.mu_q.push_back(rng.Uniform(0, 1));
    f.sigma_q.push_back(rng.Uniform(0.01, 0.1));
  }
  return f;
}

std::vector<double> MakeExpFixture(size_t n, bool edges) {
  Rng rng(edges ? 17 : 9);
  std::vector<double> log_in(n);
  for (size_t j = 0; j < n; ++j) {
    log_in[j] = rng.Uniform(-900, 10);
    if (edges && rng.Uniform(0, 1) < 0.2) {
      switch (static_cast<int>(rng.Uniform(0, 3))) {
        case 0: log_in[j] = 800.0; break;  // overflow after the shift
        case 1: log_in[j] = std::numeric_limits<double>::quiet_NaN(); break;
        default: log_in[j] = -std::numeric_limits<double>::infinity(); break;
      }
    }
  }
  return log_in;
}

constexpr size_t kBatchEntries = 64;

void BM_JointLogDensityBatch(benchmark::State& state,
                             const kernels::KernelBackend* backend,
                             size_t dim) {
  const JointFixture f = MakeJointFixture(kBatchEntries, dim, false);
  const kernels::JointBatchArgs args = f.Args();
  std::vector<double> out(f.n);
  for (auto _ : state) {
    backend->joint_log_density(args, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * f.n));
}

void BM_HullBoundsBatch(benchmark::State& state,
                        const kernels::KernelBackend* backend, size_t dim) {
  const HullFixture f = MakeHullFixture(kBatchEntries, dim, false);
  const kernels::HullBatchArgs args = f.Args();
  std::vector<double> upper(f.n), lower(f.n);
  for (auto _ : state) {
    backend->hull_bounds(args, upper.data(), lower.data());
    benchmark::DoNotOptimize(upper.data());
    benchmark::DoNotOptimize(lower.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * f.n));
}

void RegisterBatchBenchmarks() {
  for (const kernels::KernelBackend* backend : kernels::CompiledBackends()) {
    if (!kernels::Runnable(*backend)) continue;
    for (const size_t dim : {size_t{8}, size_t{27}}) {
      const std::string suffix =
          std::string("/") + backend->name + "/dim:" + std::to_string(dim);
      benchmark::RegisterBenchmark(
          ("BM_JointLogDensityBatch" + suffix).c_str(),
          [backend, dim](benchmark::State& state) {
            BM_JointLogDensityBatch(state, backend, dim);
          });
      benchmark::RegisterBenchmark(
          ("BM_HullBoundsBatch" + suffix).c_str(),
          [backend, dim](benchmark::State& state) {
            BM_HullBoundsBatch(state, backend, dim);
          });
    }
  }
}

// ------------------------- kernel regression cells --------------------------

bool SameBits(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

// Best-observed ns per entry of `fn` over one n-entry batch: calibrated to
// ~2ms timed blocks, minimum across blocks (same noise stance as the
// guard's min-collapse across smoke re-runs).
template <typename Fn>
double TimeNsPerEntry(size_t n, Fn&& fn) {
  using Clock = std::chrono::steady_clock;
  fn();  // warm
  size_t iters = 1;
  for (;;) {
    const auto t0 = Clock::now();
    for (size_t i = 0; i < iters; ++i) fn();
    const double ns = static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - t0)
            .count());
    if (ns >= 2e6 || iters >= (size_t{1} << 24)) break;
    iters *= 2;
  }
  double best = std::numeric_limits<double>::infinity();
  for (int block = 0; block < 5; ++block) {
    const auto t0 = Clock::now();
    for (size_t i = 0; i < iters; ++i) fn();
    const double ns = static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - t0)
            .count());
    best = std::min(best, ns / (static_cast<double>(iters) * n));
  }
  return best;
}

void EmitKernelCell(const std::string& cell, double ns_per_entry) {
  BenchCellMetrics metrics;
  metrics.bench = "micro_kernels";
  metrics.scale = 1.0;  // kernel cost is dataset-size independent
  metrics.cell = cell;
  metrics.ns_per_entry = ns_per_entry;
  AppendBenchJson(metrics);
}

// Smoke mode: cross-check every runnable backend bit-for-bit against the
// scalar reference (random + edge fixtures, full blocks and a ragged tail),
// and emit one ns/entry cell per (kernel, backend, dim). Returns the
// process exit code: non-zero on any bit mismatch.
int RunKernelCells() {
  const kernels::KernelBackend& scalar = kernels::ScalarBackend();
  std::printf("active backend: %s\n", kernels::ActiveBackend().name);
  int failures = 0;

  for (const kernels::KernelBackend* backend : kernels::CompiledBackends()) {
    if (!kernels::Runnable(*backend)) {
      std::printf("  %s: compiled but not runnable on this CPU, skipped\n",
                  backend->name);
      continue;
    }
    for (const size_t dim : {size_t{8}, size_t{27}}) {
      // Bit-identity: full-width batch and a ragged tail, plain and edge
      // fixtures. kBatchEntries - 3 also exercises the scalar tail path.
      for (const bool edges : {false, true}) {
        for (const size_t n : {kBatchEntries, kBatchEntries - 3}) {
          JointFixture jf = MakeJointFixture(n, dim, edges);
          std::vector<double> ref(n), got(n);
          scalar.joint_log_density(jf.Args(), ref.data());
          backend->joint_log_density(jf.Args(), got.data());
          if (!SameBits(ref, got)) {
            std::fprintf(stderr,
                         "FAIL joint_log_density %s dim=%zu n=%zu edges=%d: "
                         "bits differ from scalar\n",
                         backend->name, dim, n, edges);
            ++failures;
          }
          HullFixture hf = MakeHullFixture(n, dim, edges);
          std::vector<double> ref_up(n), ref_lo(n), got_up(n), got_lo(n);
          scalar.hull_bounds(hf.Args(), ref_up.data(), ref_lo.data());
          backend->hull_bounds(hf.Args(), got_up.data(), got_lo.data());
          if (!SameBits(ref_up, got_up) || !SameBits(ref_lo, got_lo)) {
            std::fprintf(stderr,
                         "FAIL hull_bounds %s dim=%zu n=%zu edges=%d: "
                         "bits differ from scalar\n",
                         backend->name, dim, n, edges);
            ++failures;
          }
          const std::vector<double> log_in = MakeExpFixture(n, edges);
          std::vector<double> ref_exp(n), got_exp(n);
          scalar.exp_shift(log_in.data(), -3.5, n, ref_exp.data());
          backend->exp_shift(log_in.data(), -3.5, n, got_exp.data());
          if (!SameBits(ref_exp, got_exp)) {
            std::fprintf(stderr,
                         "FAIL exp_shift %s n=%zu edges=%d: "
                         "bits differ from scalar\n",
                         backend->name, n, edges);
            ++failures;
          }
        }
      }

      // Timing cells (ordinary-value fixtures: the hot path's common case).
      const JointFixture jf = MakeJointFixture(kBatchEntries, dim, false);
      const kernels::JointBatchArgs jargs = jf.Args();
      std::vector<double> out(kBatchEntries);
      const double joint_ns = TimeNsPerEntry(kBatchEntries, [&] {
        backend->joint_log_density(jargs, out.data());
        benchmark::DoNotOptimize(out.data());
      });
      const HullFixture hf = MakeHullFixture(kBatchEntries, dim, false);
      const kernels::HullBatchArgs hargs = hf.Args();
      std::vector<double> upper(kBatchEntries), lower(kBatchEntries);
      const double hull_ns = TimeNsPerEntry(kBatchEntries, [&] {
        backend->hull_bounds(hargs, upper.data(), lower.data());
        benchmark::DoNotOptimize(upper.data());
      });
      const std::string key =
          std::string("backend=") + backend->name + ",dim=" +
          std::to_string(dim);
      std::printf("  %-28s joint %7.2f ns/entry   hull %7.2f ns/entry\n",
                  key.c_str(), joint_ns, hull_ns);
      EmitKernelCell("kernel=joint_log_density," + key, joint_ns);
      EmitKernelCell("kernel=hull_bounds," + key, hull_ns);
    }
  }

  if (failures > 0) {
    std::fprintf(stderr, "%d kernel cross-check failure(s)\n", failures);
    return 1;
  }
  std::printf("all runnable backends bit-identical to scalar\n");
  return 0;
}

}  // namespace
}  // namespace gauss

int main(int argc, char** argv) {
  // Smoke mode (ctest micro_kernels_smoke): kernel regression cells + bit
  // cross-check instead of the google-benchmark harness.
  const char* json = std::getenv("GAUSS_BENCH_JSON");
  if (json != nullptr && json[0] != '\0') return gauss::RunKernelCells();

  gauss::RegisterBatchBenchmarks();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
