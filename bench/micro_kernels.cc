// Ablation A7 (DESIGN.md): micro-kernels of the hot query path, measured
// with google-benchmark — Gaussian density evaluation, the Lemma 2/3 hull
// bounds, the hull integral, and node (de)serialization.

#include <vector>

#include <benchmark/benchmark.h>

#include "common/random.h"
#include "gausstree/node.h"
#include "math/gaussian.h"
#include "math/hull.h"
#include "math/hull_integral.h"

namespace gauss {
namespace {

void BM_GaussianPdf(benchmark::State& state) {
  Rng rng(1);
  const double x = rng.Uniform(-3, 3);
  const double mu = rng.Uniform(-3, 3);
  const double sigma = rng.Uniform(0.1, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(GaussianPdf(x, mu, sigma));
  }
}
BENCHMARK(BM_GaussianPdf);

void BM_GaussianLogPdf(benchmark::State& state) {
  Rng rng(2);
  const double x = rng.Uniform(-3, 3);
  const double mu = rng.Uniform(-3, 3);
  const double sigma = rng.Uniform(0.1, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(GaussianLogPdf(x, mu, sigma));
  }
}
BENCHMARK(BM_GaussianLogPdf);

void BM_JointLogDensityVector(benchmark::State& state) {
  const size_t d = static_cast<size_t>(state.range(0));
  Rng rng(3);
  std::vector<double> mu_v(d), sg_v(d), mu_q(d), sg_q(d);
  for (size_t i = 0; i < d; ++i) {
    mu_v[i] = rng.Uniform(0, 1);
    sg_v[i] = rng.Uniform(0.01, 0.1);
    mu_q[i] = rng.Uniform(0, 1);
    sg_q[i] = rng.Uniform(0.01, 0.1);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(JointLogDensity(mu_v.data(), sg_v.data(),
                                             mu_q.data(), sg_q.data(), d));
  }
}
BENCHMARK(BM_JointLogDensityVector)->Arg(10)->Arg(27);

void BM_LogUpperHull(benchmark::State& state) {
  DimBounds b;
  b.mu_lo = 0.2;
  b.mu_hi = 0.6;
  b.sigma_lo = 0.01;
  b.sigma_hi = 0.08;
  double x = -1.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(LogUpperHull(x, b));
    x += 1e-6;  // sweep across the piecewise cases
    if (x > 2.0) x = -1.0;
  }
}
BENCHMARK(BM_LogUpperHull);

void BM_LogLowerHull(benchmark::State& state) {
  DimBounds b;
  b.mu_lo = 0.2;
  b.mu_hi = 0.6;
  b.sigma_lo = 0.01;
  b.sigma_hi = 0.08;
  double x = -1.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(LogLowerHull(x, b));
    x += 1e-6;
    if (x > 2.0) x = -1.0;
  }
}
BENCHMARK(BM_LogLowerHull);

void BM_HullIntegral(benchmark::State& state) {
  const IntegralMethod method = state.range(0) == 0
                                    ? IntegralMethod::kErf
                                    : IntegralMethod::kSigmoidPoly5;
  DimBounds b;
  b.mu_lo = 0.2;
  b.mu_hi = 0.6;
  b.sigma_lo = 0.01;
  b.sigma_hi = 0.08;
  for (auto _ : state) {
    benchmark::DoNotOptimize(UpperHullIntegral(b, method));
  }
}
BENCHMARK(BM_HullIntegral)->Arg(0)->Arg(1);

GtNode MakeLeaf(size_t dim, size_t records) {
  Rng rng(4);
  GtNode node;
  node.kind = GtNodeKind::kLeaf;
  for (size_t r = 0; r < records; ++r) {
    std::vector<double> mu(dim), sigma(dim);
    for (double& m : mu) m = rng.Uniform(0, 1);
    for (double& s : sigma) s = rng.Uniform(0.01, 0.1);
    node.pfvs.push_back(Pfv(r, std::move(mu), std::move(sigma)));
  }
  return node;
}

void BM_LeafSerialize(benchmark::State& state) {
  const size_t dim = static_cast<size_t>(state.range(0));
  const GtCapacities caps = GtCapacities::ForPageSize(8192, dim);
  const GtNode node = MakeLeaf(dim, caps.leaf);
  std::vector<uint8_t> page(8192);
  for (auto _ : state) {
    node.Serialize(page.data(), dim);
    benchmark::DoNotOptimize(page.data());
  }
}
BENCHMARK(BM_LeafSerialize)->Arg(10)->Arg(27);

void BM_LeafDeserialize(benchmark::State& state) {
  const size_t dim = static_cast<size_t>(state.range(0));
  const GtCapacities caps = GtCapacities::ForPageSize(8192, dim);
  const GtNode node = MakeLeaf(dim, caps.leaf);
  std::vector<uint8_t> page(8192);
  node.Serialize(page.data(), dim);
  for (auto _ : state) {
    benchmark::DoNotOptimize(GtNode::Deserialize(page.data(), dim, 0));
  }
}
BENCHMARK(BM_LeafDeserialize)->Arg(10)->Arg(27);

}  // namespace
}  // namespace gauss

BENCHMARK_MAIN();
