#!/usr/bin/env python3
"""Regenerates the committed serving-bench baseline from a fresh run.

Collapses a JSON-lines bench file ($GAUSS_BENCH_JSON, appended across
repeated smoke runs) with exactly the semantics of the CI guard
(bench/check_regression.py shares its load_cells): cells keyed by
(bench, scale, cell), last line wins for deterministic metrics, minimum
observed wins for the timing metrics (p99_us, ns_per_entry) — so the
baseline records precisely what
the guard would have compared against. The collapsed cells are merged over
the existing baseline and written back sorted, one JSON object per line,
for reviewable diffs.

Cells present only in the old baseline are KEPT by default — dropping a
cell silently would also drop the guard's coverage check for it — and each
is reported; pass --prune to drop them deliberately (e.g. after deleting a
bench or renaming its cells).

Typical regeneration (from the repo root, after a ci-preset build):

  rm -f build/BENCH_serving.json
  ctest --test-dir build -R '_smoke$'
  ctest --test-dir build -R '_smoke$'   # twice: feeds the min-p99 handling
  python3 bench/update_baseline.py --current build/BENCH_serving.json
"""

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from check_regression import load_cells


def main(argv=None):
    """Rewrites the baseline; `argv` defaults to sys.argv[1:] (injectable
    for the unit tests in bench/test_update_baseline.py). Returns the
    process exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--current", required=True,
                        help="BENCH_serving.json emitted by the fresh run(s)")
    parser.add_argument("--baseline",
                        default=os.path.join(
                            os.path.dirname(os.path.abspath(__file__)),
                            "BENCH_serving.baseline.json"),
                        help="baseline file to rewrite "
                             "(default: bench/BENCH_serving.baseline.json)")
    parser.add_argument("--prune", action="store_true",
                        help="drop baseline cells absent from the current "
                             "run instead of keeping them")
    args = parser.parse_args(argv)

    current = load_cells(args.current)
    if not current:
        raise SystemExit(f"{args.current}: no cells — refusing to write an "
                         f"empty baseline")
    baseline = load_cells(args.baseline) if os.path.exists(args.baseline) \
        else {}

    merged = {} if args.prune else dict(baseline)
    merged.update(current)

    for key in sorted(set(baseline) - set(current)):
        action = "pruned" if args.prune else \
            "kept from old baseline (absent in current run; --prune to drop)"
        print(f"  {action}: {key[0]}[scale={key[1]}] {key[2]}")

    with open(args.baseline, "w", encoding="utf-8") as f:
        for key in sorted(merged):
            f.write(json.dumps(merged[key]) + "\n")
    print(f"wrote {len(merged)} cells to {args.baseline} "
          f"({len(current)} from the current run)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
