// gauss_shardd: a standalone Gauss-tree shard server.
//
// Opens one persisted shard — either a single .gauss file (--file=PATH) or
// one shard of a multi-device directory layout (--dir=PATH --shard=N) — and
// serves the binary shard protocol (src/net/README.md) on a listening TCP
// socket. A GaussDb::ServeRemote() coordinator on another host connects one
// RpcBackend per shardd and scatter-gathers MLIQ/TIQ queries across them,
// with refinement rounds batched one frame per shardd per round.
//
// Deployment: run one gauss_shardd per shard file, each close to its device:
//
//   hostA$ gauss_shardd --file=/data/shard-0000.gauss --port=7001
//   hostB$ gauss_shardd --file=/data/shard-0001.gauss --port=7001
//   front$ query_server --connect=hostA:7001,hostB:7001
//
// The server answers Start/Refine/Release/Stats requests from any number of
// coordinator connections concurrently; admission control (deadlines,
// shedding) stays at the coordinator. SIGINT/SIGTERM (or --max-seconds,
// handy for scripted smoke tests) shut the server down cleanly: in-flight
// requests drain, then the aggregate ServiceStats are printed.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <chrono>
#include <string>
#include <thread>

#include "api/gauss_db.h"
#include "net/shard_server.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void HandleSignal(int) { g_stop = 1; }

void Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --file=SHARD.gauss | --dir=PATH [--shard=N]\n"
      "          [--host=ADDR] [--port=P] [--workers=N]\n"
      "          [--cache-pages=N] [--prefetch-depth=N] [--max-seconds=S]\n"
      "\n"
      "Serves one Gauss-tree shard over the binary shard protocol.\n"
      "--port=0 (default) picks an ephemeral port and prints it.\n"
      "--max-seconds=0 (default) serves until SIGINT/SIGTERM.\n",
      argv0);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gauss;

  std::string file;
  std::string directory;
  size_t shard = 0;
  ShardServerOptions server_options;
  ServeOptions serve;
  serve.num_workers = 2;
  uint64_t max_seconds = 0;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--file=", 7) == 0) {
      file = arg + 7;
    } else if (std::strncmp(arg, "--dir=", 6) == 0) {
      directory = arg + 6;
    } else if (std::strncmp(arg, "--shard=", 8) == 0) {
      shard = static_cast<size_t>(std::atoll(arg + 8));
    } else if (std::strncmp(arg, "--host=", 7) == 0) {
      server_options.host = arg + 7;
    } else if (std::strncmp(arg, "--port=", 7) == 0) {
      server_options.port = static_cast<uint16_t>(std::atoi(arg + 7));
    } else if (std::strncmp(arg, "--workers=", 10) == 0) {
      serve.num_workers = static_cast<size_t>(std::atoll(arg + 10));
    } else if (std::strncmp(arg, "--cache-pages=", 14) == 0) {
      serve.cache_pages = static_cast<size_t>(std::atoll(arg + 14));
    } else if (std::strncmp(arg, "--prefetch-depth=", 17) == 0) {
      serve.prefetch_depth = static_cast<size_t>(std::atoll(arg + 17));
    } else if (std::strncmp(arg, "--max-seconds=", 14) == 0) {
      max_seconds = static_cast<uint64_t>(std::atoll(arg + 14));
    } else {
      Usage(argv[0]);
      return 1;
    }
  }
  if (file.empty() == directory.empty()) {  // exactly one source, please
    Usage(argv[0]);
    return 1;
  }

  // ---- Attach to the persisted shard. --------------------------------------
  GaussDb db = [&] {
    OpenResult opened = file.empty() ? GaussDb::OpenDirectory(directory)
                                     : GaussDb::OpenFile(file);
    if (!opened.ok()) {
      std::fprintf(stderr, "gauss_shardd: cannot open %s: %s (%s)\n",
                   file.empty() ? directory.c_str() : file.c_str(),
                   opened.error().message.c_str(),
                   OpenErrorCodeName(opened.error().code));
      std::exit(1);
    }
    return std::move(opened).value();
  }();

  // A shardd serves exactly one Gauss-tree. A sharded single-file image has
  // its trees interleaved in one device — partition it into per-shard files
  // (CreateOnDirectory) to distribute it.
  if (!file.empty() && db.sharded()) {
    std::fprintf(stderr,
                 "gauss_shardd: %s holds a sharded image; use a directory "
                 "layout (--dir=PATH --shard=N) to serve one shard of it\n",
                 file.c_str());
    return 1;
  }

  // ---- Serving stack + listening socket. -----------------------------------
  Session session = db.Serve(serve);
  if (shard >= session.num_shards()) {
    std::fprintf(stderr, "gauss_shardd: --shard=%zu out of range (%zu shards)\n",
                 shard, session.num_shards());
    return 1;
  }
  QueryService* service = session.shard_service(shard);

  NetError listen_error;
  std::unique_ptr<ShardServer> server =
      ShardServer::Listen(service, server_options, &listen_error);
  if (server == nullptr) {
    std::fprintf(stderr, "gauss_shardd: cannot listen on %s:%u: %s\n",
                 server_options.host.c_str(), server_options.port,
                 listen_error.message.c_str());
    return 1;
  }

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);

  std::printf("gauss_shardd: serving %zu objects (dim %zu) on %s:%u\n",
              db.size(), db.dim(), server_options.host.c_str(),
              server->port());
  std::fflush(stdout);

  const auto started = std::chrono::steady_clock::now();
  while (g_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    if (max_seconds != 0 &&
        std::chrono::steady_clock::now() - started >=
            std::chrono::seconds(max_seconds)) {
      break;
    }
  }

  server->Shutdown();
  std::printf("gauss_shardd: shut down\n%s", server->stats().ToString().c_str());
  return 0;
}
