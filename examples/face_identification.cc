// Face identification over a synthetic biometric gallery — the application
// the paper's introduction motivates.
//
// A "gallery" of enrolled persons is built from facial feature vectors whose
// per-feature uncertainty depends on the capture conditions of the
// enrollment photo (rotation, illumination, distance). At identification
// time a new probe image is observed under its own (different) conditions.
// The example compares Euclidean nearest-neighbour identification with the
// Gauss-tree's k-MLIQ, and shows a rank-3 watchlist via TIQ. A final act
// enrolls latecomers through Session::Insert() while the gallery keeps
// serving — the live-ingest path (GaussDbOptions::ingest) — and identifies
// them immediately, no rebuild in between.

#include <cstdio>
#include <vector>

#include "api/gauss_db.h"
#include "common/random.h"
#include "pfv/pfv_file.h"
#include "scan/seq_scan.h"
#include "storage/buffer_pool.h"
#include "storage/page_device.h"

namespace {

constexpr size_t kPersons = 2000;
constexpr size_t kFeatures = 12;  // geometric facial features
constexpr size_t kProbes = 200;

// Capture conditions determine which features are measured reliably: e.g.
// face proportions survive rotation, nose breadth does not.
struct CaptureConditions {
  double rotation_penalty;      // inflates features 0..5
  double illumination_penalty;  // inflates features 6..11
};

std::vector<double> FeatureSigmas(const CaptureConditions& cc,
                                  gauss::Rng& rng) {
  std::vector<double> sigma(kFeatures);
  for (size_t f = 0; f < kFeatures; ++f) {
    const double base = 0.01 + 0.01 * rng.NextDouble();
    const double penalty =
        f < kFeatures / 2 ? cc.rotation_penalty : cc.illumination_penalty;
    sigma[f] = base * (1.0 + penalty);
  }
  return sigma;
}

}  // namespace

int main() {
  using namespace gauss;
  Rng rng(2024);

  // True (unobservable) facial geometry per person.
  std::vector<std::vector<double>> true_faces(kPersons,
                                              std::vector<double>(kFeatures));
  for (auto& face : true_faces) {
    for (double& f : face) f = rng.NextDouble();
  }

  // The gallery database, plus a flat pfv file (own storage) for the
  // Euclidean-NN baseline. Live ingest is enabled so persons can still be
  // enrolled after the gallery goes live (the last act below).
  GaussDbOptions db_options;
  db_options.ingest.enabled = true;
  GaussDb db = GaussDb::CreateInMemory(kFeatures, db_options);
  InMemoryPageDevice scan_device(kDefaultPageSize);
  BufferPool scan_pool(&scan_device, 1 << 14);
  PfvFile file(&scan_pool, kFeatures);

  // Enrollment: one observation per person under random conditions.
  for (size_t person = 0; person < kPersons; ++person) {
    const CaptureConditions cc{rng.Uniform(0, 8), rng.Uniform(0, 8)};
    const std::vector<double> sigma = FeatureSigmas(cc, rng);
    std::vector<double> observed(kFeatures);
    for (size_t f = 0; f < kFeatures; ++f) {
      observed[f] = rng.Gaussian(true_faces[person][f], sigma[f]);
    }
    const Pfv enrolled(person, observed, sigma);
    db.Insert(enrolled);
    file.Append(enrolled);
  }
  Session gallery = db.Serve();
  SeqScan scan(&file);

  // Identification probes: re-observations of enrolled persons.
  size_t mliq_correct = 0, nn_correct = 0, watchlist_hits = 0;
  for (size_t probe = 0; probe < kProbes; ++probe) {
    const size_t person = rng.UniformInt(kPersons);
    const CaptureConditions cc{rng.Uniform(0, 8), rng.Uniform(0, 8)};
    const std::vector<double> sigma = FeatureSigmas(cc, rng);
    std::vector<double> observed(kFeatures);
    for (size_t f = 0; f < kFeatures; ++f) {
      observed[f] = rng.Gaussian(true_faces[person][f], sigma[f]);
    }
    const Pfv q(900000 + probe, observed, sigma);

    const QueryResponse mliq = gallery.Submit(Query::Mliq(q, 1)).get();
    if (!mliq.items.empty() && mliq.items[0].id == person) ++mliq_correct;

    const auto nn = scan.QueryKnnMeans(q, 1);
    if (!nn.empty() && nn[0] == person) ++nn_correct;

    // Watchlist semantics: report everyone who could be this probe with at
    // least 5% probability.
    const QueryResponse watchlist = gallery.Submit(Query::Tiq(q, 0.05)).get();
    for (const auto& item : watchlist.items) {
      if (item.id == person) {
        ++watchlist_hits;
        break;
      }
    }
  }

  std::printf("gallery: %zu persons, %zu features, %zu probes\n", kPersons,
              kFeatures, kProbes);
  std::printf("rank-1 identification  — k-MLIQ: %.1f%%   Euclidean NN: %.1f%%\n",
              100.0 * mliq_correct / kProbes, 100.0 * nn_correct / kProbes);
  std::printf("watchlist (P >= 5%%) contains the true person: %.1f%%\n",
              100.0 * watchlist_hits / kProbes);
  std::printf(
      "\nBoth enrollment and probe images carry individual per-feature "
      "uncertainty; the\nprobabilistic model exploits it, plain feature "
      "distance cannot (paper Section 1).\n");

  // Late enrollment: 100 more persons walk up *after* the gallery went
  // live. Session::Insert() routes them into the in-memory delta and they
  // are identifiable the moment the call returns — same MLIQ contract, no
  // rebuild, no serving pause.
  constexpr size_t kLatecomers = 100;
  size_t late_correct = 0;
  for (size_t i = 0; i < kLatecomers; ++i) {
    const uint64_t person = kPersons + i;
    std::vector<double> face(kFeatures);
    for (double& f : face) f = rng.NextDouble();
    const CaptureConditions cc{rng.Uniform(0, 8), rng.Uniform(0, 8)};
    const std::vector<double> sigma = FeatureSigmas(cc, rng);
    std::vector<double> observed(kFeatures);
    for (size_t f = 0; f < kFeatures; ++f) {
      observed[f] = rng.Gaussian(face[f], sigma[f]);
    }
    const InsertResult added = gallery.Insert(Pfv(person, observed, sigma));
    if (!added.ok()) {
      std::fprintf(stderr, "late enrollment failed (%s): %s\n",
                   InsertOutcomeName(added.outcome), added.message.c_str());
      return 1;
    }

    // Probe the latecomer immediately, under fresh capture conditions.
    const CaptureConditions probe_cc{rng.Uniform(0, 8), rng.Uniform(0, 8)};
    const std::vector<double> probe_sigma = FeatureSigmas(probe_cc, rng);
    std::vector<double> probe_observed(kFeatures);
    for (size_t f = 0; f < kFeatures; ++f) {
      probe_observed[f] = rng.Gaussian(face[f], probe_sigma[f]);
    }
    const QueryResponse mliq =
        gallery
            .Submit(Query::Mliq(Pfv(950000 + i, probe_observed, probe_sigma),
                                /*k=*/1))
            .get();
    if (!mliq.items.empty() && mliq.items[0].id == person) ++late_correct;
  }
  const IngestStats ingest = gallery.ingest_stats();
  std::printf(
      "\nlate enrollment while serving: %zu persons, rank-1 re-identified "
      "immediately: %.1f%%\n(%zu in the delta, epoch %llu — see "
      "src/gausstree/README.md for the delta/merge design)\n",
      kLatecomers, 100.0 * late_correct / kLatecomers, ingest.delta_size,
      static_cast<unsigned long long>(ingest.epoch));
  return 0;
}
