// GaussDb demo: a face-identification service under concurrent load.
//
// The offline path enrolls a synthetic gallery of persons into a GaussDb and
// the online path serves a probe stream from a Session: several client
// threads submit batches of MLIQ (who is this?) and TIQ (watchlist: anyone
// above 20%?) queries that the session's worker pool executes concurrently
// over a shared sharded page cache. A separate latency-sensitive client
// streams single probes through Submit() with a per-query deadline — the
// admission-control path: expired or shed probes come back immediately with
// a non-kOk status instead of silently queueing forever.
//
// Output: identification accuracy plus the service's aggregate stats —
// throughput, latency percentiles, page I/O, and admission-control counts.
//
// Pass --shards=N to partition the gallery over N Gauss-trees served
// scatter-gather through a ShardCoordinator front door (same clients, same
// contracts — answers and admission behavior are independent of sharding).
//
// Pass --dir=PATH to persist the sharded gallery as a multi-device
// directory layout (GaussDb::CreateOnDirectory: PATH/MANIFEST + one
// PATH/shard-NNNN.gauss FilePageDevice per shard) and serve from those
// files — the "gallery larger than one device" deployment. Implies
// --shards=4 unless --shards is given. The directory is left in place, and
// a later `--dir=PATH` run reattaches to it via GaussDb::OpenDirectory
// (skipping enrollment; shard count then comes from the manifest, typed
// open errors are reported) instead of truncating the persisted gallery.
//
// Pass --connect=host:port,... to serve the same clients over *remote*
// shards instead: each endpoint is a gauss_shardd process serving one shard
// file of a gallery persisted by an earlier --dir run, and
// GaussDb::ServeRemote() builds the scatter-gather front door over
// RpcBackends. The batch and streaming clients are byte-for-byte the code
// below — the transport is invisible above the Session surface:
//
//   hostA$ gauss_shardd --file=GALLERY/shard-0000.gauss --port=7001
//   ...
//   front$ query_server --connect=hostA:7001,hostB:7001,...
//
// Pass --enroll-rate=N to enroll new persons *while serving*: the session is
// opened with live ingest enabled (GaussDbOptions::ingest locally, the
// IngestOptions argument of ServeRemote() for --connect) and a walk-up
// enrollment desk inserts N new persons per second through Session::Insert()
// concurrently with the probe clients above. Inserts land in an in-memory
// delta that serves immediately — no rebuild, no pause in query traffic —
// and (locally) a background merge folds the delta into the base tree once
// it passes the merge threshold. kDeltaFull is backpressure, not an error:
// the desk retries after a beat. After the load drains, the demo probes the
// freshly enrolled faces to show they are queryable the moment Insert()
// returns.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "api/gauss_db.h"
#include "common/random.h"

namespace {

constexpr size_t kPersons = 5000;
constexpr size_t kFeatures = 12;
constexpr size_t kClients = 3;       // concurrent batch submitters
constexpr size_t kBatchesPerClient = 4;
constexpr size_t kProbesPerBatch = 100;
constexpr size_t kStreamedProbes = 200;  // deadline-carrying singles
constexpr double kWatchlistThreshold = 0.2;

// Per-feature measurement noise depending on capture conditions (cf.
// examples/face_identification.cc).
std::vector<double> FeatureSigmas(gauss::Rng& rng) {
  std::vector<double> sigma(kFeatures);
  for (double& s : sigma) {
    s = (0.01 + 0.01 * rng.NextDouble()) * (1.0 + rng.Uniform(0, 8));
  }
  return sigma;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gauss;
  Rng rng(7);

  size_t num_shards = 0;   // 0 = unsharded single tree
  std::string directory;   // non-empty = multi-device directory layout
  std::string connect;     // non-empty = remote shards (gauss_shardd hosts)
  size_t enroll_rate = 0;  // >0 = enroll N persons/s while serving
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--shards=", 9) == 0) {
      num_shards = static_cast<size_t>(std::atoll(argv[i] + 9));
    } else if (std::strncmp(argv[i], "--dir=", 6) == 0) {
      directory = argv[i] + 6;
    } else if (std::strncmp(argv[i], "--connect=", 10) == 0) {
      connect = argv[i] + 10;
    } else if (std::strncmp(argv[i], "--enroll-rate=", 14) == 0) {
      enroll_rate = static_cast<size_t>(std::atoll(argv[i] + 14));
    } else {
      std::fprintf(stderr,
                   "usage: %s [--shards=N] [--dir=PATH] "
                   "[--connect=host:port,...] [--enroll-rate=N]\n",
                   argv[0]);
      return 1;
    }
  }
  if (!connect.empty() && (num_shards != 0 || !directory.empty())) {
    std::fprintf(stderr,
                 "--connect serves remote shards; it does not combine with "
                 "--shards/--dir\n");
    return 1;
  }
  if (!directory.empty() && num_shards == 0) {
    num_shards = 4;  // a directory layout is one device per shard
  }

  // True (unobservable) facial geometry per person.
  std::vector<std::vector<double>> true_faces(kPersons,
                                              std::vector<double>(kFeatures));
  for (auto& face : true_faces) {
    for (double& f : face) f = rng.NextDouble();
  }

  ServeOptions serve;
  serve.num_workers = 4;
  serve.cache_pages = 1 << 12;

  // Walk-up enrollment desk: live ingest is opt-in, and the same
  // IngestOptions shape configures it for every deployment mode.
  IngestOptions ingest;
  ingest.enabled = enroll_rate > 0;
  ingest.delta_capacity = 1 << 14;
  ingest.merge_threshold = 1 << 10;
  ingest.merge_policy = MergePolicy::kBackground;

  // ---- Offline: enroll the gallery (or reattach/connect to one). ---------
  std::optional<GaussDb> db;
  std::optional<Session> session;
  if (!connect.empty()) {
    // The gallery lives on remote gauss_shardd servers, each serving one
    // shard file persisted by an earlier --dir run of this binary. The
    // enrollment RNG stream must still advance identically so the probe
    // clients below test against the same true faces.
    for (size_t person = 0; person < kPersons; ++person) {
      const std::vector<double> sigma = FeatureSigmas(rng);
      for (size_t f = 0; f < kFeatures; ++f) {
        (void)rng.Gaussian(true_faces[person][f], sigma[f]);
      }
    }
    std::vector<std::string> endpoints;
    for (size_t start = 0; start <= connect.size();) {
      size_t comma = connect.find(',', start);
      if (comma == std::string::npos) comma = connect.size();
      if (comma > start) {
        endpoints.push_back(connect.substr(start, comma - start));
      }
      start = comma + 1;
    }
    ServeResult remote = GaussDb::ServeRemote(endpoints, serve, ingest);
    if (!remote.ok()) {
      std::fprintf(stderr, "cannot connect to remote shards: %s\n",
                   remote.error().message.c_str());
      return 1;
    }
    session.emplace(std::move(remote).value());
    std::printf("GaussDb: %zu remote shard server(s) behind a scatter-gather "
                "front door, %zu batch clients + 1 streaming client\n",
                session->num_shards(), kClients);
  } else {
    GaussDbOptions db_options;
    db_options.shards.num_shards = num_shards;  // 0 keeps the single tree
    db_options.ingest = ingest;  // live enrollment iff --enroll-rate given
    const bool reattach = [&] {
      if (directory.empty()) return false;
      std::FILE* manifest = std::fopen((directory + "/MANIFEST").c_str(), "rb");
      if (manifest == nullptr) return false;
      std::fclose(manifest);
      return true;
    }();
    db.emplace([&] {
      if (directory.empty()) {
        return GaussDb::CreateInMemory(kFeatures, db_options);
      }
      if (reattach) {
        // A previous --dir run left a gallery here: serve it instead of
        // truncating it. A damaged directory comes back as a typed error.
        OpenResult reopened = GaussDb::OpenDirectory(directory, db_options);
        if (!reopened.ok()) {
          std::fprintf(stderr, "cannot reattach to %s: %s (%s)\n",
                       directory.c_str(), reopened.error().message.c_str(),
                       OpenErrorCodeName(reopened.error().code));
          std::exit(1);
        }
        return std::move(reopened).value();
      }
      return GaussDb::CreateOnDirectory(directory, kFeatures, db_options);
    }());
    if (reattach) {
      std::printf("reattached to the persisted gallery under %s\n",
                  directory.c_str());
      // The enrollment RNG stream must still advance identically so the
      // probe clients below test against the same true faces.
      for (size_t person = 0; person < kPersons; ++person) {
        const std::vector<double> sigma = FeatureSigmas(rng);
        for (size_t f = 0; f < kFeatures; ++f) {
          (void)rng.Gaussian(true_faces[person][f], sigma[f]);
        }
      }
    } else {
      for (size_t person = 0; person < kPersons; ++person) {
        const std::vector<double> sigma = FeatureSigmas(rng);
        std::vector<double> observed(kFeatures);
        for (size_t f = 0; f < kFeatures; ++f) {
          observed[f] = rng.Gaussian(true_faces[person][f], sigma[f]);
        }
        db->Insert(Pfv(person, observed, sigma));
      }
    }

    // ---- Online: one serving session, shared by every client thread. -----
    session.emplace(db->Serve(serve));

    if (db->per_shard_devices()) {
      std::printf("GaussDb: %zu enrolled persons over %zu shard devices under "
                  "%s, %zu workers behind a scatter-gather front door, %zu "
                  "batch clients + 1 streaming client\n",
                  db->size(), session->num_shards(), directory.c_str(),
                  session->num_workers(), kClients);
    } else if (db->sharded()) {
      std::printf("GaussDb: %zu enrolled persons over %zu shards, %zu workers "
                  "behind a scatter-gather front door, %zu batch clients + 1 "
                  "streaming client\n",
                  db->size(), session->num_shards(), session->num_workers(),
                  kClients);
    } else {
      std::printf("GaussDb: %zu enrolled persons, %zu workers, %zu batch "
                  "clients + 1 streaming client\n",
                  db->size(), session->num_workers(), kClients);
    }
  }

  std::atomic<size_t> identified{0};
  std::atomic<size_t> probes_total{0};
  std::atomic<size_t> mliq_probes{0};
  std::atomic<size_t> watchlist_reports{0};
  std::atomic<size_t> shard_errors{0};

  auto client = [&](size_t client_id) {
    Rng client_rng(100 + client_id);
    for (size_t b = 0; b < kBatchesPerClient; ++b) {
      // Each batch probes random enrolled persons under fresh conditions.
      std::vector<size_t> truth(kProbesPerBatch);
      std::vector<Query> batch;
      batch.reserve(kProbesPerBatch);
      for (size_t p = 0; p < kProbesPerBatch; ++p) {
        const size_t person = client_rng.UniformInt(kPersons);
        truth[p] = person;
        const std::vector<double> sigma = FeatureSigmas(client_rng);
        std::vector<double> observed(kFeatures);
        for (size_t f = 0; f < kFeatures; ++f) {
          observed[f] = client_rng.Gaussian(true_faces[person][f], sigma[f]);
        }
        Pfv probe(900000 + p, observed, sigma);
        if (p % 4 == 3) {
          batch.push_back(Query::Tiq(std::move(probe), kWatchlistThreshold));
        } else {
          batch.push_back(Query::Mliq(std::move(probe), /*k=*/1));
        }
      }

      const BatchResult result = session->ExecuteBatch(batch);
      for (size_t p = 0; p < result.responses.size(); ++p) {
        const QueryResponse& resp = result.responses[p];
        probes_total.fetch_add(1, std::memory_order_relaxed);
        if (resp.status == QueryResponse::Status::kShardError) {
          // Remote serving only: a shard connection died — the query failed
          // typed instead of hanging. Count it and move on.
          shard_errors.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        if (resp.kind == QueryKind::kMliq) {
          mliq_probes.fetch_add(1, std::memory_order_relaxed);
          if (!resp.items.empty() && resp.items[0].id == truth[p]) {
            identified.fetch_add(1, std::memory_order_relaxed);
          }
        } else {
          watchlist_reports.fetch_add(resp.items.size(),
                                      std::memory_order_relaxed);
        }
      }
      if (client_id == 0 && b == kBatchesPerClient - 1) {
        std::printf("\nlast batch of client 0:\n%s\n",
                    result.stats.ToString().c_str());
      }
    }
  };

  // A latency-sensitive access-control gate: a probe that cannot *start*
  // executing within 50 ms is rejected (queue full -> shed, budget gone ->
  // expired) and the gate falls back to a secondary check. Submit() + an
  // execution-start deadline gives exactly that contract.
  std::atomic<size_t> streamed_ok{0}, streamed_rejected{0};
  auto streaming_client = [&] {
    Rng stream_rng(999);
    for (size_t p = 0; p < kStreamedProbes; ++p) {
      const size_t person = stream_rng.UniformInt(kPersons);
      const std::vector<double> sigma = FeatureSigmas(stream_rng);
      std::vector<double> observed(kFeatures);
      for (size_t f = 0; f < kFeatures; ++f) {
        observed[f] = stream_rng.Gaussian(true_faces[person][f], sigma[f]);
      }
      auto future = session->Submit(
          Query::Mliq(Pfv(950000 + p, observed, sigma), /*k=*/1)
              .DeadlineAfter(std::chrono::milliseconds(50)));
      const QueryResponse resp = future.get();
      if (resp.status == QueryResponse::Status::kOk) {
        streamed_ok.fetch_add(1, std::memory_order_relaxed);
      } else {
        streamed_rejected.fetch_add(1, std::memory_order_relaxed);
      }
    }
  };

  // The enrollment desk: while the probe clients above hammer the session,
  // enroll brand-new persons at --enroll-rate per second. Insert() returns a
  // typed InsertResult — kRoutedToDelta is success (the person serves from
  // the in-memory delta immediately), kDeltaFull is backpressure while a
  // merge drains the delta (retry after a beat), anything else is a bug in
  // this demo. The desk keeps each enrollee's true face so we can probe
  // them afterwards.
  std::atomic<bool> serving_done{false};
  std::vector<std::vector<double>> enrolled_faces;
  std::vector<uint64_t> enrolled_ids;
  auto enrollment_desk = [&] {
    Rng desk_rng(555);
    const auto interval =
        std::chrono::nanoseconds(uint64_t{1000000000} / enroll_rate);
    auto next_slot = std::chrono::steady_clock::now();
    uint64_t next_id = 1000000;  // well past the offline gallery's ids
    while (!serving_done.load(std::memory_order_relaxed)) {
      std::vector<double> face(kFeatures);
      for (double& f : face) f = desk_rng.NextDouble();
      const std::vector<double> sigma = FeatureSigmas(desk_rng);
      std::vector<double> observed(kFeatures);
      for (size_t f = 0; f < kFeatures; ++f) {
        observed[f] = desk_rng.Gaussian(face[f], sigma[f]);
      }
      InsertResult enrolled = session->Insert(Pfv(next_id, observed, sigma));
      while (enrolled.outcome == InsertOutcome::kDeltaFull &&
             !serving_done.load(std::memory_order_relaxed)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        enrolled = session->Insert(Pfv(next_id, observed, sigma));
      }
      if (!enrolled.ok()) break;  // kDeltaFull at shutdown, or a demo bug
      enrolled_faces.push_back(std::move(face));
      enrolled_ids.push_back(next_id);
      ++next_id;
      next_slot += interval;
      std::this_thread::sleep_until(next_slot);
    }
  };

  std::vector<std::thread> clients;
  for (size_t c = 0; c < kClients; ++c) clients.emplace_back(client, c);
  clients.emplace_back(streaming_client);
  std::optional<std::thread> desk;
  if (enroll_rate > 0) desk.emplace(enrollment_desk);
  for (auto& t : clients) t.join();
  if (desk) {
    serving_done.store(true, std::memory_order_relaxed);
    desk->join();
  }

  std::printf("\nserved %zu batched probes from %zu clients\n",
              probes_total.load(), kClients);
  std::printf("MLIQ top-1 identification: %zu/%zu correct\n",
              identified.load(), mliq_probes.load());
  std::printf("TIQ watchlist reports: %zu identities above %.0f%%\n",
              watchlist_reports.load(), kWatchlistThreshold * 100);
  if (shard_errors.load() != 0) {
    std::printf("shard errors: %zu probes failed typed\n", shard_errors.load());
  }
  std::printf("streaming gate: %zu answered in budget, %zu shed/expired "
              "(deadline 50 ms)\n",
              streamed_ok.load(), streamed_rejected.load());
  if (enroll_rate > 0) {
    // Every person enrolled during the load must be identifiable right now,
    // whether they still sit in the delta or were merged into the base by a
    // background merge mid-run.
    Rng verify_rng(777);
    size_t found = 0;
    for (size_t i = 0; i < enrolled_ids.size(); ++i) {
      const std::vector<double> sigma = FeatureSigmas(verify_rng);
      std::vector<double> observed(kFeatures);
      for (size_t f = 0; f < kFeatures; ++f) {
        observed[f] = verify_rng.Gaussian(enrolled_faces[i][f], sigma[f]);
      }
      const QueryResponse resp =
          session->Submit(Query::Mliq(Pfv(980000 + i, observed, sigma), 1))
              .get();
      if (resp.status == QueryResponse::Status::kOk && !resp.items.empty() &&
          resp.items[0].id == enrolled_ids[i]) {
        ++found;
      }
    }
    const IngestStats ingest_stats = session->ingest_stats();
    std::printf(
        "enrollment desk: %zu persons enrolled live at %zu/s; %zu/%zu "
        "identified post-enrollment\n",
        enrolled_ids.size(), enroll_rate, found, enrolled_ids.size());
    std::printf(
        "live ingest: epoch %llu, %llu merge(s) completed, %zu still in the "
        "delta, %llu inserts accepted\n",
        static_cast<unsigned long long>(ingest_stats.epoch),
        static_cast<unsigned long long>(ingest_stats.merges_completed),
        ingest_stats.delta_size,
        static_cast<unsigned long long>(ingest_stats.inserts_accepted));
  }
  const IoStats io = session->io_stats();  // summed over per-shard caches
  std::printf("cache(s): %llu logical / %llu physical reads across %zu "
              "serving pool(s)\n",
              static_cast<unsigned long long>(io.logical_reads),
              static_cast<unsigned long long>(io.physical_reads),
              session->num_shards());
  return 0;
}
