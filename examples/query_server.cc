// GaussServe demo: a face-identification service under concurrent load.
//
// The offline path enrolls a synthetic gallery of persons into a Gauss-tree
// and finalizes it to pages (the build-offline step). The online path then
// reattaches the finalized tree through a ShardedBufferPool and serves a
// probe stream with QueryService: several client threads submit batches of
// MLIQ (who is this?) and TIQ (watchlist: anyone above 20%?) queries that a
// worker pool executes concurrently over the shared page cache.
//
// Output: identification accuracy plus the service's aggregate stats —
// throughput, latency percentiles, and page I/O per query.

#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "common/random.h"
#include "gausstree/gauss_tree.h"
#include "service/query_service.h"
#include "storage/buffer_pool.h"
#include "storage/page_device.h"
#include "storage/sharded_buffer_pool.h"

namespace {

constexpr size_t kPersons = 5000;
constexpr size_t kFeatures = 12;
constexpr size_t kClients = 3;       // concurrent submitters
constexpr size_t kBatchesPerClient = 4;
constexpr size_t kProbesPerBatch = 100;
constexpr double kWatchlistThreshold = 0.2;

// Per-feature measurement noise depending on capture conditions (cf.
// examples/face_identification.cc).
std::vector<double> FeatureSigmas(gauss::Rng& rng) {
  std::vector<double> sigma(kFeatures);
  for (double& s : sigma) {
    s = (0.01 + 0.01 * rng.NextDouble()) * (1.0 + rng.Uniform(0, 8));
  }
  return sigma;
}

}  // namespace

int main() {
  using namespace gauss;
  Rng rng(7);

  // True (unobservable) facial geometry per person.
  std::vector<std::vector<double>> true_faces(kPersons,
                                              std::vector<double>(kFeatures));
  for (auto& face : true_faces) {
    for (double& f : face) f = rng.NextDouble();
  }

  // ---- Offline: enroll and finalize the gallery. -------------------------
  InMemoryPageDevice device(kDefaultPageSize);
  PageId meta_page;
  {
    BufferPool build_pool(&device, 1 << 14);
    GaussTree gallery(&build_pool, kFeatures);
    for (size_t person = 0; person < kPersons; ++person) {
      const std::vector<double> sigma = FeatureSigmas(rng);
      std::vector<double> observed(kFeatures);
      for (size_t f = 0; f < kFeatures; ++f) {
        observed[f] = rng.Gaussian(true_faces[person][f], sigma[f]);
      }
      gallery.Insert(Pfv(person, observed, sigma));
    }
    gallery.Finalize();
    meta_page = gallery.meta_page();
  }

  // ---- Online: serve the finalized tree through a sharded cache. ---------
  ShardedBufferPool pool(&device, 1 << 12);
  auto gallery = GaussTree::Open(&pool, meta_page);
  QueryServiceOptions options;
  options.num_workers = 4;
  QueryService service(*gallery, options);

  std::printf("GaussServe: %zu enrolled persons, %zu workers, %zu clients\n",
              kPersons, service.num_workers(), kClients);

  std::atomic<size_t> identified{0};
  std::atomic<size_t> probes_total{0};
  std::atomic<size_t> watchlist_reports{0};

  auto client = [&](size_t client_id) {
    Rng client_rng(100 + client_id);
    for (size_t b = 0; b < kBatchesPerClient; ++b) {
      // Each batch probes random enrolled persons under fresh conditions.
      std::vector<size_t> truth(kProbesPerBatch);
      std::vector<QueryRequest> batch;
      batch.reserve(kProbesPerBatch);
      for (size_t p = 0; p < kProbesPerBatch; ++p) {
        const size_t person = client_rng.UniformInt(kPersons);
        truth[p] = person;
        const std::vector<double> sigma = FeatureSigmas(client_rng);
        std::vector<double> observed(kFeatures);
        for (size_t f = 0; f < kFeatures; ++f) {
          observed[f] = client_rng.Gaussian(true_faces[person][f], sigma[f]);
        }
        Pfv probe(900000 + p, observed, sigma);
        if (p % 4 == 3) {
          batch.push_back(QueryRequest::Tiq(std::move(probe),
                                            kWatchlistThreshold));
        } else {
          batch.push_back(QueryRequest::Mliq(std::move(probe), /*k=*/1));
        }
      }

      const BatchResult result = service.ExecuteBatch(batch);
      for (size_t p = 0; p < result.responses.size(); ++p) {
        const QueryResponse& resp = result.responses[p];
        probes_total.fetch_add(1, std::memory_order_relaxed);
        if (resp.kind == QueryKind::kMliq) {
          if (!resp.items.empty() && resp.items[0].id == truth[p]) {
            identified.fetch_add(1, std::memory_order_relaxed);
          }
        } else {
          watchlist_reports.fetch_add(resp.items.size(),
                                      std::memory_order_relaxed);
        }
      }
      if (client_id == 0 && b == kBatchesPerClient - 1) {
        std::printf("\nlast batch of client 0:\n%s\n",
                    result.stats.ToString().c_str());
      }
    }
  };

  std::vector<std::thread> clients;
  for (size_t c = 0; c < kClients; ++c) clients.emplace_back(client, c);
  for (auto& t : clients) t.join();

  const size_t mliq_probes = probes_total.load() * 3 / 4;
  std::printf("\nserved %zu probes from %zu clients\n", probes_total.load(),
              kClients);
  std::printf("MLIQ top-1 identification: %zu/%zu correct\n",
              identified.load(), mliq_probes);
  std::printf("TIQ watchlist reports: %zu identities above %.0f%%\n",
              watchlist_reports.load(), kWatchlistThreshold * 100);
  const IoStats io = pool.stats();
  std::printf("cache: %llu logical / %llu physical reads over %zu resident "
              "pages\n",
              static_cast<unsigned long long>(io.logical_reads),
              static_cast<unsigned long long>(io.physical_reads),
              pool.resident_pages());
  return 0;
}
