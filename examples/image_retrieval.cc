// Content-based image retrieval on color histograms — the paper's data set 1
// scenario, using the full evaluation pipeline: the histogram dataset
// surrogate, the paper's query protocol, and all three access methods
// (Gauss-tree, X-tree on rectangular approximations, sequential scan).

#include <cstdio>

#include "api/gauss_db.h"
#include "data/paper_datasets.h"
#include "gausstree/tree_stats.h"
#include "pfv/pfv_file.h"
#include "scan/seq_scan.h"
#include "storage/buffer_pool.h"
#include "storage/page_device.h"
#include "xtree/xtree.h"
#include "xtree/xtree_queries.h"

#include <iostream>

int main() {
  using namespace gauss;

  // 4000 27-bin color histograms with per-dimension base uncertainty
  // (smaller than the full benchmark for a snappy example).
  const PaperDataset data = GeneratePaperDataset1(4000);
  const size_t dim = data.dataset.dim();

  // The identification database. Build() bulk-loads (top-down hull-integral
  // partitioning — distinctly more selective than repeated insertion, see
  // bench/ablation_bulkload) and finalizes in one call.
  GaussDb db = GaussDb::CreateInMemory(dim);
  db.Build(data.dataset);
  Session session = db.Serve();

  // The competing access methods (X-tree on rectangular approximations,
  // sequential scan) on their own storage stack.
  InMemoryPageDevice device(kDefaultPageSize);
  BufferPool pool(&device, 1 << 14);
  PfvFile file(&pool, dim);
  XTree xtree(&pool, dim);
  file.AppendAll(data.dataset);
  for (uint32_t i = 0; i < data.dataset.size(); ++i) {
    xtree.Insert(data.dataset[i], i);
  }
  xtree.Finalize();
  SeqScan scan(&file);
  XTreeQueries xq(&xtree, &file);

  PrintTreeSummary(session.tree(), std::cout);

  // "Find the image this (re-photographed, differently lit) picture shows."
  const auto workload = GeneratePaperWorkload(data, 60);
  size_t tree_hits = 0, xtree_hits = 0, nn_hits = 0;
  uint64_t tree_pages = 0, xtree_pages = 0;
  for (const auto& iq : workload) {
    // Cold-start the caches per query, matching the paper's protocol.
    session.cache().Clear();
    session.cache().ResetStats();
    const QueryResponse g =
        session.Submit(Query::Mliq(iq.query, 1).Accuracy(1e-2)).get();
    tree_pages += session.cache().stats().physical_reads;
    if (!g.items.empty() && g.items[0].id == iq.true_id) ++tree_hits;

    pool.Clear();
    pool.ResetStats();
    const MliqResult x = xq.QueryMliq(iq.query, 1);
    xtree_pages += pool.stats().physical_reads;
    if (!x.items.empty() && x.items[0].id == iq.true_id) ++xtree_hits;

    const auto nn = scan.QueryKnnMeans(iq.query, 1);
    if (!nn.empty() && nn[0] == iq.true_id) ++nn_hits;
  }

  const double n = static_cast<double>(workload.size());
  std::printf("\nretrieval accuracy over %zu queries:\n", workload.size());
  std::printf("  Gauss-tree MLIQ          : %.1f%%  (%.0f pages/query)\n",
              100.0 * tree_hits / n, tree_pages / n);
  std::printf("  X-tree approx + refine   : %.1f%%  (%.0f pages/query)\n",
              100.0 * xtree_hits / n, xtree_pages / n);
  std::printf("  Euclidean NN on means    : %.1f%%  (full scan)\n",
              100.0 * nn_hits / n);
  std::printf("  sequential file          : %zu pages/query\n",
              file.page_count());

  // This catalog is static: once Serve() finalized it, the pages are
  // immutable, and a late Insert() comes back as a typed refusal instead of
  // aborting the process. Catalogs that must grow while serving enable
  // GaussDbOptions::ingest (see examples/face_identification.cc).
  const InsertResult late = db.Insert(data.dataset[0]);
  std::printf("\nlate Insert() on the static catalog: refused typed as "
              "\"%s\"\n  (%s)\n",
              InsertOutcomeName(late.outcome), late.message.c_str());
  return 0;
}
