// Sensor-network track re-identification with heteroscedastic sensors.
//
// A field of sensors of different grades measures moving emitters; each
// measurement's uncertainty depends on the sensor grade and on the distance
// between sensor and emitter. The database stores one probabilistic feature
// vector per (emitter, measurement-station) sighting; a later sighting from
// a different station must be matched to the same emitter. This exercises
// exactly the paper's setting: "the circumstances in which a given data
// object is transformed into a feature vector may strongly vary."

#include <cmath>
#include <cstdio>
#include <vector>

#include "api/gauss_db.h"
#include "common/random.h"

namespace {

constexpr size_t kEmitters = 5000;
constexpr size_t kSignature = 8;  // RF signature features per emitter
constexpr size_t kResightings = 300;

// Sensor grades: better grades measure with lower noise floors.
constexpr double kGradeNoise[] = {0.002, 0.006, 0.015};

}  // namespace

int main() {
  using namespace gauss;
  Rng rng(99);

  // Ground-truth emitter signatures.
  std::vector<std::vector<double>> signatures(kEmitters,
                                              std::vector<double>(kSignature));
  for (auto& s : signatures) {
    for (double& v : s) v = rng.NextDouble();
  }

  // Live ingest stays on: a sensor field never stops — emitters that come
  // online mid-operation are enrolled while the track database serves.
  GaussDbOptions db_options;
  db_options.ingest.enabled = true;
  GaussDb db = GaussDb::CreateInMemory(kSignature, db_options);

  // One enrollment sighting per emitter, from a random-grade sensor at a
  // random range (noise grows with range; some channels fade more).
  auto observe = [&](const std::vector<double>& truth, uint64_t id) {
    const double* grade = &kGradeNoise[rng.UniformInt(3)];
    const double range_factor = 1.0 + 2.0 * rng.NextDouble();
    std::vector<double> mu(kSignature), sigma(kSignature);
    for (size_t c = 0; c < kSignature; ++c) {
      const double fade = 1.0 + 0.5 * rng.NextDouble();  // per-channel fading
      sigma[c] = *grade * range_factor * fade;
      mu[c] = rng.Gaussian(truth[c], sigma[c]);
    }
    return Pfv(id, std::move(mu), std::move(sigma));
  };

  for (size_t e = 0; e < kEmitters; ++e) {
    db.Insert(observe(signatures[e], e));
  }
  Session track_db = db.Serve();

  // Re-sightings from different sensors; match them back.
  size_t rank1 = 0, confident = 0, ambiguous = 0;
  uint64_t objects_evaluated = 0;
  for (size_t s = 0; s < kResightings; ++s) {
    const size_t emitter = rng.UniformInt(kEmitters);
    const Pfv probe = observe(signatures[emitter], 700000 + s);

    const QueryResponse top = track_db.Submit(Query::Mliq(probe, 3)).get();
    objects_evaluated += top.stats.objects_evaluated;
    if (!top.items.empty() && top.items[0].id == emitter) ++rank1;

    // Operational decision rule: accept the match only when one track owns
    // at least 50% of the identification probability.
    if (!top.items.empty() && top.items[0].probability >= 0.5) {
      ++confident;
    } else {
      // Otherwise inspect all plausible tracks (P >= 10%).
      const QueryResponse plausible =
          track_db.Submit(Query::Tiq(probe, 0.10)).get();
      ambiguous += plausible.items.size() > 1 ? 1 : 0;
    }
  }

  std::printf("track database: %zu emitters, %zu-channel signatures\n",
              kEmitters, kSignature);
  std::printf("re-sightings: %zu, rank-1 match rate: %.1f%%\n", kResightings,
              100.0 * rank1 / kResightings);
  std::printf("confident matches (P >= 50%%): %.1f%%, ambiguous cases with "
              ">1 plausible track: %.1f%%\n",
              100.0 * confident / kResightings,
              100.0 * ambiguous / kResightings);
  std::printf("avg exact density evaluations per query: %.0f of %zu stored\n",
              static_cast<double>(objects_evaluated) / kResightings,
              kEmitters);

  // New emitters come online mid-operation. Each first sighting is enrolled
  // through the live session — Insert() returns a typed InsertResult and the
  // track serves from the in-memory delta immediately — and the next
  // sighting from a different sensor must re-acquire it.
  constexpr size_t kNewEmitters = 50;
  size_t reacquired = 0;
  for (size_t n = 0; n < kNewEmitters; ++n) {
    std::vector<double> signature(kSignature);
    for (double& v : signature) v = rng.NextDouble();
    const uint64_t track_id = kEmitters + n;
    const InsertResult added = track_db.Insert(observe(signature, track_id));
    if (!added.ok()) {
      std::fprintf(stderr, "new-track enrollment failed (%s): %s\n",
                   InsertOutcomeName(added.outcome), added.message.c_str());
      return 1;
    }
    const Pfv resight = observe(signature, 800000 + n);
    const QueryResponse top = track_db.Submit(Query::Mliq(resight, 1)).get();
    if (!top.items.empty() && top.items[0].id == track_id) ++reacquired;
  }
  std::printf(
      "new emitters enrolled while tracking: %zu, re-acquired by the next "
      "sensor: %.1f%% (delta holds %zu tracks)\n",
      kNewEmitters, 100.0 * reacquired / kNewEmitters,
      track_db.ingest_stats().delta_size);
  return 0;
}
