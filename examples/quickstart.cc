// Quickstart: the paper's Figure 1 scenario end to end in ~60 lines.
//
// A database of three facial observations (O1..O3) in a 2-d feature space
// (F1 sensitive to rotation angle, F2 to illumination). Each observation
// carries per-feature uncertainty. A query taken with good rotation but bad
// illumination must identify O3 — even though conventional Euclidean
// similarity on the feature values favours O1.

#include <cstdio>

#include "api/gauss_db.h"
#include "pfv/pfv_file.h"
#include "scan/seq_scan.h"
#include "storage/buffer_pool.h"
#include "storage/page_device.h"

int main() {
  using namespace gauss;

  // The probabilistic feature vectors: (id, means, standard deviations).
  const Pfv o1(1, {2.6, 1.6}, {0.15, 0.15});  // good rotation & illumination
  const Pfv o2(2, {1.2, 2.6}, {0.90, 0.90});  // bad rotation & illumination
  const Pfv o3(3, {1.8, 4.2}, {0.80, 0.15});  // bad rotation, good illum.

  // The identification database: GaussDb owns the storage stack (device,
  // caches, Gauss-tree) behind three calls. Insert() reports a typed
  // InsertResult — here each observation lands in the build tree.
  GaussDb db = GaussDb::CreateInMemory(/*dim=*/2);
  for (const Pfv& v : {o1, o2, o3}) {
    const InsertResult added = db.Insert(v);
    if (!added.ok()) {
      std::fprintf(stderr, "enrollment failed (%s): %s\n",
                   InsertOutcomeName(added.outcome), added.message.c_str());
      return 1;
    }
  }
  // Build -> serve. After this the pages are immutable: Insert() would come
  // back as InsertOutcome::kFinalized. (To keep enrolling *while* serving,
  // set GaussDbOptions::ingest.enabled — examples/query_server.cc does.)
  Session session = db.Serve();

  // A flat pfv file for the conventional sequential-scan baseline.
  InMemoryPageDevice scan_device(kDefaultPageSize);
  BufferPool scan_pool(&scan_device, 64);
  PfvFile file(&scan_pool, 2);
  for (const Pfv& v : {o1, o2, o3}) file.Append(v);

  // The query observation: rotation was good (F1 exact, sigma 0.12) but the
  // illumination was bad (F2 uncertain, sigma 0.85).
  const Pfv query(0, {3.05, 3.05}, {0.12, 0.85});

  // Conventional similarity search on the feature values.
  SeqScan scan(&file);
  const auto nn = scan.QueryKnnMeans(query, 3);
  std::printf("Euclidean NN ranking  : O%llu, O%llu, O%llu\n",
              (unsigned long long)nn[0], (unsigned long long)nn[1],
              (unsigned long long)nn[2]);

  // The probabilistic identification query (k-MLIQ).
  const QueryResponse mliq = session.Submit(Query::Mliq(query, 3)).get();
  std::printf("k-MLIQ identification :");
  for (const auto& item : mliq.items) {
    std::printf(" O%llu=%.0f%%", (unsigned long long)item.id,
                100.0 * item.probability);
  }
  std::printf("\n");

  // A threshold identification query: everyone above 12%.
  const QueryResponse tiq = session.Submit(Query::Tiq(query, 0.12)).get();
  std::printf("TIQ (P >= 12%%)        :");
  for (const auto& item : tiq.items) {
    std::printf(" O%llu=%.0f%%", (unsigned long long)item.id,
                100.0 * item.probability);
  }
  std::printf("\n");

  std::printf(
      "\nThe Euclidean method picks O%llu; the Gaussian uncertainty model "
      "identifies O%llu —\nits large F1 uncertainty absorbs the rotation "
      "error, and the query's F2 uncertainty\nabsorbs the illumination "
      "error, matching the paper's Figure 1 intuition.\n",
      (unsigned long long)nn[0], (unsigned long long)mliq.items[0].id);
  return 0;
}
